#include "store/version_store.h"

#include <algorithm>
#include <string>

namespace esr::store {

void VersionStore::AppendVersion(ObjectId object, LamportTimestamp timestamp,
                                 Value value) {
  objects_[object][timestamp] = std::move(value);
  max_timestamp_ = std::max(max_timestamp_, timestamp);
}

Status VersionStore::RemoveVersion(ObjectId object,
                                   LamportTimestamp timestamp) {
  auto it = objects_.find(object);
  if (it == objects_.end()) {
    return Status::NotFound("object has no versions");
  }
  if (it->second.erase(timestamp) == 0) {
    return Status::NotFound("no version at timestamp " + ToString(timestamp));
  }
  if (it->second.empty()) objects_.erase(it);
  if (timestamp == max_timestamp_) {
    // The removed version carried the store-wide maximum (COMPE's
    // remove-version compensation deletes the newest version it just
    // added); recompute so MaxTimestamp() never reports a timestamp no
    // version carries — stability tracking would otherwise advance the
    // VTNC against a phantom version.
    max_timestamp_ = kZeroTimestamp;
    for (const auto& [id, versions] : objects_) {
      if (!versions.empty()) {
        max_timestamp_ = std::max(max_timestamp_, versions.rbegin()->first);
      }
    }
  }
  return Status::Ok();
}

std::optional<Version> VersionStore::ReadLatest(ObjectId object) const {
  auto it = objects_.find(object);
  if (it == objects_.end() || it->second.empty()) return std::nullopt;
  const auto& [ts, value] = *it->second.rbegin();
  return Version{ts, value};
}

std::optional<Version> VersionStore::ReadAtOrBefore(ObjectId object,
                                                    LamportTimestamp at) const {
  auto it = objects_.find(object);
  if (it == objects_.end() || it->second.empty()) return std::nullopt;
  // upper_bound: first version strictly newer than `at`; step back one.
  auto vit = it->second.upper_bound(at);
  if (vit == it->second.begin()) return std::nullopt;
  --vit;
  return Version{vit->first, vit->second};
}

int64_t VersionStore::VersionCount(ObjectId object) const {
  auto it = objects_.find(object);
  if (it == objects_.end()) return 0;
  return static_cast<int64_t>(it->second.size());
}

uint64_t VersionStore::StateDigest() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, _] : objects_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  uint64_t h = 1469598103934665603ULL;
  // Each field is terminated with a 0x1f unit separator (a byte no decimal
  // rendering contains): without it, distinct states like (id=1, ts="23.0")
  // and (id=12, ts="3.0") render to the same byte stream and collide.
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0x1f;
    h *= 1099511628211ULL;
  };
  for (ObjectId id : ids) {
    mix(std::to_string(id));
    for (const auto& [ts, value] : objects_.at(id)) {
      mix(ToString(ts));
      mix(value.ToString());
    }
  }
  return h;
}

std::vector<ObjectId> VersionStore::ObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, _] : objects_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::tuple<ObjectId, LamportTimestamp, Value>>
VersionStore::SnapshotVersions() const {
  std::vector<std::tuple<ObjectId, LamportTimestamp, Value>> out;
  for (ObjectId id : ObjectIds()) {
    for (const auto& [ts, value] : objects_.at(id)) {
      out.emplace_back(id, ts, value);
    }
  }
  return out;
}

}  // namespace esr::store
