#ifndef ESR_STORE_VERSION_STORE_H_
#define ESR_STORE_VERSION_STORE_H_

#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace esr::store {

/// One immutable version of an object.
struct Version {
  LamportTimestamp timestamp;
  Value value;

  friend bool operator==(const Version&, const Version&) = default;
};

/// Multi-version (append-only) object store: the substrate for RITU's
/// multi-version mode (paper section 3.3).
///
/// Versions are totally ordered by Lamport timestamp. Visibility follows the
/// Modular Synchronization Method's *visible transaction number counter*
/// (VTNC): a query reading at-or-below the VTNC is serializable, because the
/// VTNC is only advanced to timestamps below which no new version can ever
/// be created. Reading above the VTNC is allowed — that is precisely the
/// controlled inconsistency RITU charges against the query's inconsistency
/// counter.
class VersionStore {
 public:
  VersionStore() = default;

  /// Appends a version. Appending an identical (timestamp, value) pair is
  /// idempotent; appending a *different* value at an existing timestamp
  /// replaces it (this is how COMPE compensates a multi-version update:
  /// "adding another version with the same timestamp but bearing the
  /// previous value").
  void AppendVersion(ObjectId object, LamportTimestamp timestamp, Value value);

  /// Removes the version at `timestamp` exactly (the other compensation
  /// strategy for multi-version RITU). Returns NotFound if absent.
  Status RemoveVersion(ObjectId object, LamportTimestamp timestamp);

  /// Latest version by timestamp; nullopt when the object has no versions.
  std::optional<Version> ReadLatest(ObjectId object) const;

  /// Latest version with timestamp <= `at`; nullopt if none exists.
  std::optional<Version> ReadAtOrBefore(ObjectId object,
                                        LamportTimestamp at) const;

  /// Number of versions stored for `object`.
  int64_t VersionCount(ObjectId object) const;

  /// Timestamp of the newest version across all objects (zero when empty);
  /// used by stability tracking to advance the VTNC.
  LamportTimestamp MaxTimestamp() const { return max_timestamp_; }

  /// Deterministic digest over (object, timestamp, value) triples.
  uint64_t StateDigest() const;

  /// All object ids with at least one version, sorted.
  std::vector<ObjectId> ObjectIds() const;

  /// The checkpointable image: (object, timestamp, value) triples sorted by
  /// object then timestamp. Restore by replaying through AppendVersion.
  std::vector<std::tuple<ObjectId, LamportTimestamp, Value>> SnapshotVersions()
      const;

 private:
  // Per object: versions keyed (and thus sorted) by timestamp.
  std::unordered_map<ObjectId, std::map<LamportTimestamp, Value>> objects_;
  LamportTimestamp max_timestamp_;
};

}  // namespace esr::store

#endif  // ESR_STORE_VERSION_STORE_H_
