#include "workload/workload.h"

#include <cassert>
#include <sstream>

#include "store/operation.h"

namespace esr::workload {

using core::ReplicatedSystem;
using store::Operation;

std::string WorkloadResult::ToString() const {
  std::ostringstream os;
  os << "updates/s=" << UpdatesPerSec() << " queries/s=" << QueriesPerSec()
     << " completion=" << QueryCompletionRate()
     << " upd_lat_p50us=" << update_latency_us.Percentile(50)
     << " qry_lat_p50us=" << query_latency_us.Percentile(50)
     << " inconsistency_mean=" << query_inconsistency.mean()
     << " blocked=" << query_blocked_attempts << " restarts=" << query_restarts;
  return os.str();
}

struct WorkloadRunner::Client {
  SiteId site;
  Rng rng;
  bool stopped = false;

  Client(SiteId s, uint64_t seed) : site(s), rng(seed) {}
};

WorkloadRunner::WorkloadRunner(ReplicatedSystem* system, WorkloadSpec spec)
    : system_(system), spec_(spec), rng_(spec.seed) {
  assert(system != nullptr);
}

ObjectId WorkloadRunner::PickObject(Rng& rng) {
  if (spec_.zipf_theta > 0) {
    return rng.Zipf(spec_.num_objects, spec_.zipf_theta);
  }
  return rng.Uniform(0, spec_.num_objects - 1);
}

WorkloadResult WorkloadRunner::Run() {
  result_ = WorkloadResult{};
  result_.issue_window_us = spec_.duration_us;
  stop_time_ = system_->simulator().Now() + spec_.duration_us;
  for (SiteId s = 0; s < system_->config().num_sites; ++s) {
    for (int c = 0; c < spec_.clients_per_site; ++c) {
      StartClient(s, c);
    }
  }
  system_->RunFor(spec_.duration_us + spec_.drain_us);
  return result_;
}

void WorkloadRunner::StartClient(SiteId site, int index) {
  auto client = std::make_shared<Client>(
      site, spec_.seed ^ (static_cast<uint64_t>(site) << 32) ^
                static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL);
  // Stagger client starts across one mean think time.
  const SimDuration first =
      static_cast<SimDuration>(client->rng.Exponential(
          static_cast<double>(spec_.think_time_us)));
  system_->simulator().Schedule(first, [this, client]() {
    ClientIteration(client);
  });
}

void WorkloadRunner::ClientIteration(std::shared_ptr<Client> client) {
  if (system_->simulator().Now() >= stop_time_) {
    client->stopped = true;
    return;
  }
  if (client->rng.Bernoulli(spec_.update_fraction)) {
    IssueUpdate(client);
  } else {
    IssueQuery(client);
  }
}

void WorkloadRunner::IssueUpdate(std::shared_ptr<Client> client) {
  std::vector<Operation> ops;
  ops.reserve(spec_.ops_per_update);
  // Partial replication: optionally confine this ET's objects to one shard.
  // The shard is fixed by the first draw; later draws are rejected (bounded)
  // until they land in it. No extra rng draws happen when the knob is off,
  // so unsharded runs replay the legacy object sequence exactly.
  const shard::PlacementMap* placement = system_->placement();
  const bool confine = placement != nullptr && placement->num_shards() > 1 &&
                       spec_.single_shard_fraction > 0 &&
                       client->rng.Bernoulli(spec_.single_shard_fraction);
  ShardId target_shard = -1;
  auto pick = [&]() {
    ObjectId object = PickObject(client->rng);
    if (confine) {
      if (target_shard < 0) {
        target_shard = placement->ShardOf(object);
      } else {
        for (int tries = 0;
             tries < 1024 && placement->ShardOf(object) != target_shard;
             ++tries) {
          object = PickObject(client->rng);
        }
      }
    }
    return object;
  };
  if (spec_.update_kind == WorkloadSpec::UpdateKind::kTransfer) {
    // One balanced transfer per update ET: the two deltas cancel, so the
    // sum over all objects is invariant under any serializable execution.
    const ObjectId from = pick();
    ObjectId to = pick();
    if (to == from && !confine) to = (to + 1) % spec_.num_objects;
    // Under confinement a same-object transfer is left alone (it still
    // cancels); nudging it could leave the target shard.
    const int64_t amount = client->rng.Uniform(1, 50);
    ops.push_back(Operation::Increment(from, -amount));
    ops.push_back(Operation::Increment(to, amount));
  }
  for (int i = 0;
       spec_.update_kind != WorkloadSpec::UpdateKind::kTransfer &&
       i < spec_.ops_per_update;
       ++i) {
    const ObjectId object = pick();
    switch (spec_.update_kind) {
      case WorkloadSpec::UpdateKind::kIncrement:
        ops.push_back(Operation::Increment(object,
                                           client->rng.Uniform(1, 10)));
        break;
      case WorkloadSpec::UpdateKind::kTimestampedWrite:
        // Timestamp is stamped by the method at submit.
        ops.push_back(Operation::TimestampedWrite(
            object, Value(client->rng.Uniform(0, 1'000'000)),
            kZeroTimestamp));
        break;
      case WorkloadSpec::UpdateKind::kMixedNonCommutative: {
        const int64_t kind = client->rng.Uniform(0, 2);
        if (kind == 0) {
          ops.push_back(
              Operation::Increment(object, client->rng.Uniform(1, 10)));
        } else if (kind == 1) {
          ops.push_back(Operation::Write(
              object, Value(client->rng.Uniform(0, 1'000'000))));
        } else {
          ops.push_back(Operation::Multiply(object, 2));
        }
        break;
      }
    }
  }
  const SimTime begin = system_->simulator().Now();
  auto finish = [this, client, begin](Status s) {
    if (s.ok()) {
      ++result_.updates_committed;
      result_.update_latency_us.Add(
          static_cast<double>(system_->simulator().Now() - begin));
    } else {
      ++result_.updates_rejected;
    }
    const SimDuration think = static_cast<SimDuration>(
        client->rng.Exponential(static_cast<double>(spec_.think_time_us)));
    system_->simulator().Schedule(think, [this, client]() {
      ClientIteration(client);
    });
  };
  Result<EtId> submitted = system_->SubmitUpdate(client->site, std::move(ops),
                                                 finish);
  if (!submitted.ok()) {
    // Rejected at admission (never reached the commit callback).
    finish(submitted.status());
    return;
  }
  // COMPE: announce the global outcome after the configured delay.
  if ((system_->config().method == core::Method::kCompe ||
       system_->config().method == core::Method::kCompeOrdered)) {
    const bool abort =
        client->rng.Bernoulli(spec_.compe_abort_probability);
    const EtId et = *submitted;
    system_->simulator().Schedule(
        spec_.compe_decision_delay_us,
        [this, et, abort]() { (void)system_->Decide(et, !abort); });
  }
}

void WorkloadRunner::IssueQuery(std::shared_ptr<Client> client) {
  const SimTime begin = system_->simulator().Now();
  const EtId query = system_->BeginQuery(client->site, spec_.query_epsilon);
  ++result_.queries_started;
  auto reads_left = std::make_shared<int>(spec_.reads_per_query);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, client, query, begin, reads_left,
           weak = std::weak_ptr<std::function<void()>>(step)]() {
    // Alive for the duration of this call via the invoking copy; re-shared
    // into the read callback below so the chain owns itself without a
    // reference cycle.
    auto self = weak.lock();
    if (*reads_left == 0) {
      const core::QueryState* q = system_->query_state(query);
      if (q != nullptr) {
        result_.query_inconsistency.Add(static_cast<double>(q->inconsistency));
        result_.query_blocked_attempts += q->blocked_attempts;
        result_.query_restarts += q->restarts;
      }
      (void)system_->EndQuery(query);
      ++result_.queries_completed;
      result_.query_latency_us.Add(
          static_cast<double>(system_->simulator().Now() - begin));
      const SimDuration think = static_cast<SimDuration>(
          client->rng.Exponential(static_cast<double>(spec_.think_time_us)));
      system_->simulator().Schedule(think, [this, client]() {
        ClientIteration(client);
      });
      return;
    }
    --*reads_left;
    const ObjectId object = PickObject(client->rng);
    system_->Read(query, object, [this, self](Result<Value> v) {
      if (v.ok()) {
        ++result_.reads_completed;
        if (spec_.read_gap_us > 0) {
          system_->simulator().Schedule(spec_.read_gap_us,
                                        [self]() { (*self)(); });
        } else {
          (*self)();
        }
      } else {
        // Read failed terminally (e.g., query ended by teardown); the query
        // is abandoned.
        (void)v;
      }
    });
  };
  (*step)();
}

}  // namespace esr::workload
