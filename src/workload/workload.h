#ifndef ESR_WORKLOAD_WORKLOAD_H_
#define ESR_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "esr/replicated_system.h"

namespace esr::workload {

/// Parameterized query/update mix driven against a ReplicatedSystem. One
/// spec describes one experiment cell; the benchmark harnesses sweep fields
/// of it.
struct WorkloadSpec {
  /// Object universe; objects are ObjectIds [0, num_objects).
  int64_t num_objects = 100;
  /// Zipf skew over objects (0 = uniform).
  double zipf_theta = 0.0;
  /// Probability a client iteration issues an update ET (vs a query ET).
  double update_fraction = 0.2;
  /// Reads per query ET.
  int reads_per_query = 4;
  /// Update operations per update ET.
  int ops_per_update = 2;
  /// Inconsistency limit given to every query ET.
  int64_t query_epsilon = core::kUnboundedEpsilon;
  /// Mean think time between a client's consecutive ETs (exponential).
  SimDuration think_time_us = 1'000;
  /// Processing gap between a query ET's consecutive reads (0 = reads are
  /// issued back-to-back). Nonzero gaps let updates drift past a running
  /// query, exercising the inconsistency accounting.
  SimDuration read_gap_us = 0;
  int clients_per_site = 1;
  /// Issue window: clients start at t=0 and stop issuing at this time.
  SimTime duration_us = 1'000'000;

  /// Which update operations the workload issues. kIncrement suits ORDUP/
  /// COMMU/COMPE; kTimestampedWrite suits RITU; kMixedNonCommutative mixes
  /// increments, writes and appends (ORDUP / COMPE-ordered only);
  /// kTransfer moves amounts between object pairs (-x here, +x there),
  /// preserving the global sum — the bank workload whose conservation
  /// invariant the property tests check.
  enum class UpdateKind {
    kIncrement,
    kTimestampedWrite,
    kMixedNonCommutative,
    kTransfer,
  };
  UpdateKind update_kind = UpdateKind::kIncrement;

  /// Partial replication: probability an update ET's operations are confined
  /// to a single shard (later objects are re-drawn until they share the first
  /// object's shard). 0 leaves object picks independent — under sharding that
  /// yields mostly cross-shard ETs as ops_per_update grows. Ignored when the
  /// system is unsharded, so the default preserves legacy behavior exactly.
  double single_shard_fraction = 0.0;

  /// COMPE: probability an update is globally aborted, and how long after
  /// local commit the decision is announced.
  double compe_abort_probability = 0.0;
  SimDuration compe_decision_delay_us = 20'000;

  /// Extra virtual time after the issue window to let in-flight work drain
  /// before metrics are finalized.
  SimDuration drain_us = 2'000'000;

  uint64_t seed = 7;
};

/// Aggregate results of one workload run.
struct WorkloadResult {
  int64_t updates_committed = 0;
  int64_t updates_rejected = 0;  // admission/throttle/abort failures
  int64_t queries_started = 0;
  int64_t queries_completed = 0;
  int64_t reads_completed = 0;
  int64_t query_blocked_attempts = 0;
  int64_t query_restarts = 0;
  Summary update_latency_us;
  Summary query_latency_us;
  Summary query_inconsistency;
  SimTime issue_window_us = 0;

  double UpdatesPerSec() const {
    return issue_window_us > 0
               ? updates_committed * 1e6 / static_cast<double>(issue_window_us)
               : 0;
  }
  double QueriesPerSec() const {
    return issue_window_us > 0
               ? queries_completed * 1e6 /
                     static_cast<double>(issue_window_us)
               : 0;
  }
  /// Fraction of started queries that completed inside the run (an
  /// availability measure under partitions).
  double QueryCompletionRate() const {
    return queries_started > 0 ? static_cast<double>(queries_completed) /
                                     static_cast<double>(queries_started)
                               : 1.0;
  }

  std::string ToString() const;
};

/// Drives closed-loop clients (clients_per_site at every site) against a
/// ReplicatedSystem on its simulator. Each client alternates think time
/// with one ET (update or query per update_fraction); queries perform
/// reads_per_query dependent reads through ReplicatedSystem::Read, so
/// blocking and strict restarts are exercised exactly as a real application
/// would.
class WorkloadRunner {
 public:
  WorkloadRunner(core::ReplicatedSystem* system, WorkloadSpec spec);

  /// Runs the issue window plus drain and returns the metrics. The system
  /// is left quiescent-ish (drained for spec.drain_us).
  WorkloadResult Run();

 private:
  struct Client;

  void StartClient(SiteId site, int index);
  void ClientIteration(std::shared_ptr<Client> client);
  void IssueUpdate(std::shared_ptr<Client> client);
  void IssueQuery(std::shared_ptr<Client> client);
  ObjectId PickObject(Rng& rng);

  core::ReplicatedSystem* system_;
  WorkloadSpec spec_;
  Rng rng_;
  WorkloadResult result_;
  SimTime stop_time_ = 0;
};

}  // namespace esr::workload

#endif  // ESR_WORKLOAD_WORKLOAD_H_
