#include "esr/admission.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;

using Decision = AdmissionController::Decision;
using Signals = AdmissionController::Signals;

AdmissionConfig ControllerConfig(double initial_scale) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.initial_scale = initial_scale;
  return cfg;
}

TEST(AdmissionControllerTest, InterpolatesInsideDeclaredBounds) {
  AdmissionController c(ControllerConfig(0.5), 2, nullptr);
  EXPECT_EQ(c.Effective(0, 0, 10), 5);
  EXPECT_EQ(c.Effective(0, 2, 10), 6);
  EXPECT_EQ(c.Effective(0, 4, 4), 4) << "degenerate range: declared value";
  EXPECT_EQ(c.Effective(0, 6, 2), 2) << "inverted range: declared max wins";
  EXPECT_EQ(c.Effective(0, 0, kUnboundedEpsilon), kUnboundedEpsilon)
      << "an unbounded declaration has no finite range to adapt in";
  EXPECT_EQ(c.Effective(0, 0, 0), 0) << "epsilon 0 stays 1SR";
}

TEST(AdmissionControllerTest, LoosensOnBlockedOrRestartedQueries) {
  AdmissionConfig cfg = ControllerConfig(0.0);
  AdmissionController c(cfg, 1, nullptr);
  Signals blocked;
  blocked.blocked = 3;
  EXPECT_EQ(c.Observe(0, blocked), Decision::kLoosen);
  EXPECT_DOUBLE_EQ(c.scale(0), cfg.step_up);
  Signals restarted;
  restarted.restarts = 1;
  EXPECT_EQ(c.Observe(0, restarted), Decision::kLoosen);
  // Saturates at the declared max.
  for (int i = 0; i < 10; ++i) c.Observe(0, blocked);
  EXPECT_DOUBLE_EQ(c.scale(0), 1.0);
  EXPECT_EQ(c.Effective(0, 1, 16), 16);
}

TEST(AdmissionControllerTest, TightensOnLowUtilizationWhenCalm) {
  AdmissionConfig cfg = ControllerConfig(1.0);
  AdmissionController c(cfg, 1, nullptr);
  Signals calm;
  calm.completed = 4;
  calm.utilization_sum = 0.2;  // mean 0.05, well under low_utilization
  EXPECT_EQ(c.Observe(0, calm), Decision::kTighten);
  EXPECT_DOUBLE_EQ(c.scale(0), 1.0 - cfg.step_down);
  for (int i = 0; i < 20; ++i) c.Observe(0, calm);
  EXPECT_DOUBLE_EQ(c.scale(0), 0.0);
  EXPECT_EQ(c.Effective(0, 1, 16), 1) << "fully tightened admits at the min";
}

TEST(AdmissionControllerTest, HoldsWhenBusyOrNoisy) {
  AdmissionController c(ControllerConfig(0.5), 1, nullptr);
  Signals hot;
  hot.completed = 2;
  hot.utilization_sum = 1.8;  // mean 0.9: budget is being used
  EXPECT_EQ(c.Observe(0, hot), Decision::kHold);

  Signals backlogged;
  backlogged.completed = 2;
  backlogged.utilization_sum = 0;
  backlogged.queue_depth = 100;  // propagation behind: don't tighten
  EXPECT_EQ(c.Observe(0, backlogged), Decision::kHold);

  Signals divergent;
  divergent.completed = 2;
  divergent.utilization_sum = 0;
  divergent.max_divergence = 100;  // replicas far apart: don't tighten
  EXPECT_EQ(c.Observe(0, divergent), Decision::kHold);

  Signals idle;  // nothing completed, nothing blocked
  EXPECT_EQ(c.Observe(0, idle), Decision::kHold);
  EXPECT_DOUBLE_EQ(c.scale(0), 0.5);
  EXPECT_EQ(c.ticks(), 4);
}

TEST(AdmissionControllerTest, ScalesAreIndependentPerSite) {
  AdmissionController c(ControllerConfig(0.0), 3, nullptr);
  Signals blocked;
  blocked.blocked = 1;
  c.Observe(1, blocked);
  EXPECT_DOUBLE_EQ(c.scale(0), 0.0);
  EXPECT_GT(c.scale(1), 0.0);
  EXPECT_DOUBLE_EQ(c.scale(2), 0.0);
}

TEST(AdmissionControllerTest, ValueScaleAdaptsIndependentlyOfCountScale) {
  AdmissionConfig cfg = ControllerConfig(1.0);
  AdmissionController c(cfg, 1, nullptr);

  // A workload of few large-magnitude updates: count budgets sit idle
  // (mean utilization 0.05) while value budgets are nearly exhausted
  // (mean 0.9). Only the count scale should tighten.
  Signals skewed;
  skewed.completed = 4;
  skewed.utilization_sum = 0.2;
  skewed.value_completed = 4;
  skewed.value_utilization_sum = 3.6;
  EXPECT_EQ(c.Observe(0, skewed), Decision::kTighten);
  EXPECT_DOUBLE_EQ(c.scale(0), 1.0 - cfg.step_down);
  EXPECT_DOUBLE_EQ(c.value_scale(0), 1.0) << "hot value budget must hold";

  // The mirror image — many tiny updates: count budget hot, value budget
  // idle. The count scale holds while the value scale tightens.
  Signals mirrored;
  mirrored.completed = 4;
  mirrored.utilization_sum = 3.6;
  mirrored.value_completed = 4;
  mirrored.value_utilization_sum = 0.2;
  c.Observe(0, mirrored);
  EXPECT_DOUBLE_EQ(c.scale(0), 1.0 - cfg.step_down)
      << "hot count budget must hold";
  EXPECT_DOUBLE_EQ(c.value_scale(0), 1.0 - cfg.step_down);

  // Queries with no bounded value epsilon contribute no value signal, so
  // the value scale stays put even while the count scale keeps moving.
  Signals count_only;
  count_only.completed = 4;
  count_only.utilization_sum = 0.2;
  c.Observe(0, count_only);
  EXPECT_DOUBLE_EQ(c.scale(0), 1.0 - 2 * cfg.step_down);
  EXPECT_DOUBLE_EQ(c.value_scale(0), 1.0 - cfg.step_down);

  // Blocked queries cannot be attributed to one budget: both loosen
  // (saturating at 1.0 with the default step_up of 0.25).
  Signals blocked;
  blocked.blocked = 2;
  EXPECT_EQ(c.Observe(0, blocked), Decision::kLoosen);
  EXPECT_DOUBLE_EQ(c.scale(0),
                   std::min(1.0, 1.0 - 2 * cfg.step_down + cfg.step_up));
  EXPECT_DOUBLE_EQ(c.value_scale(0),
                   std::min(1.0, 1.0 - cfg.step_down + cfg.step_up));

  // EffectiveValue interpolates with the value scale, not the count scale.
  AdmissionController half(ControllerConfig(0.5), 1, nullptr);
  Signals tighten_count;
  tighten_count.completed = 4;
  tighten_count.utilization_sum = 0;
  for (int i = 0; i < 50; ++i) half.Observe(0, tighten_count);
  EXPECT_DOUBLE_EQ(half.scale(0), 0.0);
  EXPECT_EQ(half.Effective(0, 0, 10), 0);
  EXPECT_EQ(half.EffectiveValue(0, 0, 10), 5)
      << "value scale untouched by count-only tightening";
}

TEST(AdmissionControllerTest, EmitsDecisionMetrics) {
  obs::MetricRegistry metrics;
  AdmissionController c(ControllerConfig(0.5), 1, &metrics);
  Signals blocked;
  blocked.blocked = 1;
  c.Observe(0, blocked);
  Signals calm;
  calm.completed = 1;
  calm.utilization_sum = 0;
  c.Observe(0, calm);
  EXPECT_EQ(
      metrics.GetCounter("esr_admission_samples_total", {{"site", "0"}})
          .value(),
      2);
  EXPECT_EQ(metrics
                .GetCounter("esr_admission_adjustments_total",
                            {{"site", "0"}, {"direction", "loosen"}})
                .value(),
            1);
  EXPECT_EQ(metrics
                .GetCounter("esr_admission_adjustments_total",
                            {{"site", "0"}, {"direction", "tighten"}})
                .value(),
            1);
  EXPECT_DOUBLE_EQ(
      metrics.GetGauge("esr_admission_scale", {{"site", "0"}}).value(),
      c.scale(0));
}

TEST(AdmissionSystemTest, DisabledControllerAdmitsAtDeclaredEpsilon) {
  ReplicatedSystem system(Config(Method::kOrdup));
  EXPECT_EQ(system.admission(), nullptr);
  const EtId q = system.BeginQuery(1, /*epsilon=*/7);
  const QueryState* state = system.query_state(q);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->epsilon, 7);
  EXPECT_EQ(state->declared_epsilon, 7);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(AdmissionSystemTest, TightensToMinWhenBudgetsGoUnused) {
  // Queries complete every tick with zero inconsistency on an idle system:
  // the loop should walk the scale down to 0, admitting later queries at
  // the declared min — 1SR "for free".
  auto config = Config(Method::kOrdup);
  config.admission.enabled = true;
  config.admission.initial_scale = 1.0;
  ReplicatedSystem system(config);
  ASSERT_NE(system.admission(), nullptr);
  for (int i = 0; i < 30; ++i) {
    const EtId q = system.BeginQuery(1, /*epsilon=*/10);
    ASSERT_TRUE(system.TryRead(q, 0).ok());
    ASSERT_TRUE(system.EndQuery(q).ok());
    system.RunFor(config.admission.sample_interval_us);
  }
  EXPECT_DOUBLE_EQ(system.admission()->scale(1), 0.0);
  const EtId q = system.BeginQuery(1, QueryBounds{2, 10, 0, kUnboundedEpsilon});
  const QueryState* state = system.query_state(q);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->declared_epsilon, 10);
  EXPECT_EQ(state->epsilon, 2) << "fully tightened: admitted at the min bound";
  ASSERT_TRUE(system.EndQuery(q).ok());
  EXPECT_GT(system.metrics()
                .GetCounter("esr_admission_adjustments_total",
                            {{"site", "1"}, {"direction", "tighten"}})
                .value(),
            0);
}

TEST(AdmissionSystemTest, LoosensTowardDeclaredMaxWhenQueriesBlock) {
  // COMMU with a zero effective budget blocks on any in-progress update;
  // the controller must observe the blocked attempts and hand back the
  // declared headroom.
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 20'000;  // long stability lag
  config.admission.enabled = true;
  config.admission.initial_scale = 0.0;  // start fully tight
  ReplicatedSystem system(config);
  ASSERT_NE(system.admission(), nullptr);

  // Put an update in flight first so the lock-counters at site 1 are hot
  // when the query's read arrives.
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunFor(25'000);  // MSet delivered at site 1, stability still out
  const EtId q = system.BeginQuery(1, QueryBounds{0, 8, 0, kUnboundedEpsilon});
  ASSERT_EQ(system.query_state(q)->epsilon, 0);
  bool done = false;
  system.Read(q, 0, [&](Result<Value> v) {
    EXPECT_TRUE(v.ok());
    done = true;
  });
  // A steady update stream keeps the counters nonzero; the epsilon-0 query
  // stays blocked and its retry attempts feed the controller.
  for (int i = 0; i < 40; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
    system.RunFor(5'000);
  }
  EXPECT_GT(system.admission()->scale(1), 0.0)
      << "blocked attempts must loosen the scale";
  // A query admitted now gets (some of) the declared headroom back.
  const EtId q2 = system.BeginQuery(1, QueryBounds{0, 8, 0, kUnboundedEpsilon});
  EXPECT_GT(system.query_state(q2)->epsilon, 0);
  EXPECT_LE(system.query_state(q2)->epsilon, 8);
  ASSERT_TRUE(system.EndQuery(q2).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(done) << "the blocked query completes once counters drain";
  ASSERT_TRUE(system.EndQuery(q).ok());
  EXPECT_GT(system.metrics()
                .GetCounter("esr_admission_adjustments_total",
                            {{"site", "1"}, {"direction", "loosen"}})
                .value(),
            0);
}

TEST(AdmissionSystemTest, SamplingSurvivesQuiescenceDrain) {
  // RunUntilQuiescent() silences the sampling timer so the event queue can
  // drain, then restarts it; the controller must keep ticking afterwards.
  auto config = Config(Method::kOrdup);
  config.admission.enabled = true;
  ReplicatedSystem system(config);
  system.RunFor(100'000);
  const int64_t before = system.admission()->ticks();
  EXPECT_GT(before, 0);
  system.RunUntilQuiescent();
  system.RunFor(100'000);
  EXPECT_GT(system.admission()->ticks(), before)
      << "sampling must resume after quiescence";
}

}  // namespace
}  // namespace esr::core
