#include "esr/commu.h"

#include <gtest/gtest.h>

#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(CommuTest, LocalCommitIsImmediate) {
  ReplicatedSystem system(Config(Method::kCommu));
  bool committed = false;
  MustSubmit(system, 0, {Operation::Increment(0, 3)},
             [&](Status s) { committed = s.ok(); });
  // No simulator events needed: COMMU commits locally, synchronously.
  EXPECT_TRUE(committed);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 3);
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 0) << "not yet propagated";
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 3);
  EXPECT_TRUE(system.Converged());
}

TEST(CommuTest, ConcurrentIncrementsFromAllSitesConverge) {
  auto config = Config(Method::kCommu, 5, 3);
  config.network.jitter_us = 4'000;
  config.queue.fifo = false;  // COMMU tolerates unordered delivery
  ReplicatedSystem system(config);
  for (int i = 0; i < 40; ++i) {
    MustSubmit(system, i % 5, {Operation::Increment(0, 1)});
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 40);
}

TEST(CommuTest, NonCommutativeAdmissionRejected) {
  ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  auto result = system.SubmitUpdate(1, {Operation::Multiply(0, 2)});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // Plain writes never commute: rejected outright.
  EXPECT_FALSE(
      system.SubmitUpdate(0, {Operation::Write(5, Value(int64_t{1}))}).ok());
}

TEST(CommuTest, MultiplyClassObjectAcceptsOnlyMultiplies) {
  ReplicatedSystem system(Config(Method::kCommu));
  ASSERT_TRUE(system.SubmitUpdate(0, {Operation::Multiply(9, 2)}).ok());
  EXPECT_TRUE(system.SubmitUpdate(1, {Operation::Multiply(9, 3)}).ok());
  EXPECT_FALSE(system.SubmitUpdate(2, {Operation::Increment(9, 1)}).ok());
}

TEST(CommuTest, LockCountersTrackInFlightUpdates) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 10'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  auto* method0 = static_cast<CommuMethod*>(system.site_method(0));
  EXPECT_EQ(method0->LockCount(0), 1) << "in flight at origin";
  system.RunUntilQuiescent();
  EXPECT_EQ(method0->LockCount(0), 0) << "stable -> counter released";
  auto* method2 = static_cast<CommuMethod*>(system.site_method(2));
  EXPECT_EQ(method2->LockCount(0), 0);
}

TEST(CommuTest, QueryChargedByLockCounter) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 10'000;
  ReplicatedSystem system(config);
  // Two in-flight updates at origin 0.
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/5);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(system.query_state(q)->inconsistency, 2);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(CommuTest, BudgetExhaustedQueryWaitsForStability) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/0);
  Result<Value> direct = system.TryRead(q, 0);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsUnavailable());
  // The retrying Read eventually succeeds once both updates are stable.
  bool done = false;
  int64_t value = -1;
  system.Read(q, 0, [&](Result<Value> got) {
    ASSERT_TRUE(got.ok());
    value = got->AsInt();
    done = true;
  });
  system.RunUntilQuiescent();
  EXPECT_TRUE(done);
  EXPECT_EQ(value, 2);
  EXPECT_EQ(system.query_state(q)->inconsistency, 0);
  EXPECT_GT(system.query_state(q)->blocked_attempts, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(CommuTest, UpdateThrottleLimitsInFlightUpdates) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 50'000;
  config.commu_update_lock_limit = 2;
  ReplicatedSystem system(config);
  int ok = 0, throttled = 0;
  for (int i = 0; i < 5; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)}, [&](Status s) {
      s.ok() ? ++ok : ++throttled;
    });
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(throttled, 3);
  system.RunUntilQuiescent();
  // After stability the counter drains and new updates pass again.
  bool accepted = false;
  MustSubmit(system, 0, {Operation::Increment(0, 1)},
             [&](Status s) { accepted = s.ok(); });
  EXPECT_TRUE(accepted);
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(CommuTest, UpdateSubhistorySerializableDespiteReordering) {
  auto config = Config(Method::kCommu, 4, 23);
  config.network.jitter_us = 8'000;
  config.queue.fifo = false;
  ReplicatedSystem system(config);
  for (int i = 0; i < 30; ++i) {
    MustSubmit(system, i % 4,
               {Operation::Increment(i % 3, 1), Operation::Increment(3, 2)});
  }
  system.RunUntilQuiescent();
  auto sr = analysis::CheckUpdateSerializability(system.history(), 4);
  EXPECT_TRUE(sr.serializable) << sr.violation;
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(0, 3).AsInt(), 60);
}

TEST(CommuTest, MessageLossDelaysButDoesNotPreventConvergence) {
  auto config = Config(Method::kCommu, 3, 29);
  config.network.loss_probability = 0.3;
  ReplicatedSystem system(config);
  for (int i = 0; i < 10; ++i) {
    MustSubmit(system, i % 3, {Operation::Increment(0, 1)});
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 10);
}

TEST(CommuTest, QueryNeverBlocksWithUnboundedEpsilon) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 30'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 4; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
  }
  const EtId q = system.BeginQuery(0, kUnboundedEpsilon);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 4);
  EXPECT_EQ(system.query_state(q)->inconsistency, 4);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

}  // namespace
}  // namespace esr::core
