#include "esr/compe.h"

#include <gtest/gtest.h>

#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(CompeTest, OptimisticApplyThenCommitStabilizes) {
  ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 10)});
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 10) << "applied before decision";
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(et, /*commit=*/true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 10);
  // Stability reached: the logs have been truncated everywhere.
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.site_mset_log(s).size(), 0) << "site " << s;
  }
}

TEST(CompeTest, AbortCompensatesEverywhere) {
  ReplicatedSystem system(Config(Method::kCompe));
  const EtId keep = MustSubmit(system, 0, {Operation::Increment(0, 5)});
  const EtId drop = MustSubmit(system, 1, {Operation::Increment(0, 100)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 105);
  ASSERT_TRUE(system.Decide(keep, true).ok());
  ASSERT_TRUE(system.Decide(drop, false).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 5);
  EXPECT_GE(system.counters().Get("esr.compensations"), 3);
}

TEST(CompeTest, UnorderedModeRequiresCommutativeOps) {
  ReplicatedSystem system(Config(Method::kCompe));
  EXPECT_FALSE(
      system.SubmitUpdate(0, {Operation::Write(0, Value(int64_t{1}))}).ok());
  EXPECT_TRUE(system.SubmitUpdate(0, {Operation::Increment(0, 1)}).ok());
}

TEST(CompeTest, OrderedModeAdmitsNonCommutativeOps) {
  ReplicatedSystem system(Config(Method::kCompeOrdered));
  const EtId a =
      MustSubmit(system, 0, {Operation::Write(0, Value(int64_t{1}))});
  const EtId b = MustSubmit(system, 1, {Operation::Append(1, "x")});
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(a, true).ok());
  ASSERT_TRUE(system.Decide(b, true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 1);
  EXPECT_EQ(system.SiteValue(2, 1).AsString(), "x");
}

TEST(CompeTest, OrderedAbortRollsBackAndReplaysSuffix) {
  ReplicatedSystem system(Config(Method::kCompeOrdered));
  // Non-commutative history: x = 1; x += 10; x *= 2 — abort the write.
  const EtId w = MustSubmit(system, 0, {Operation::Increment(0, 1)});
  const EtId inc = MustSubmit(system, 1, {Operation::Increment(0, 10)});
  const EtId mul = MustSubmit(system, 2, {Operation::Multiply(1, 2)});
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(inc, false).ok());
  ASSERT_TRUE(system.Decide(w, true).ok());
  ASSERT_TRUE(system.Decide(mul, true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 1)
      << "aborted increment removed from the interior of the log";
}

TEST(CompeTest, PaperExampleIncMulCompensation) {
  // Inc(x,10) then Mul(x,2); aborting the Inc must yield Mul(x,2) alone
  // (paper section 4.1's worked example), which requires rollback+replay.
  ReplicatedSystem system(Config(Method::kCompeOrdered));
  const EtId seed =
      MustSubmit(system, 0, {Operation::Write(0, Value(int64_t{1}))});
  const EtId inc = MustSubmit(system, 0, {Operation::Increment(0, 10)});
  const EtId mul = MustSubmit(system, 1, {Operation::Multiply(0, 2)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 22);
  ASSERT_TRUE(system.Decide(seed, true).ok());
  ASSERT_TRUE(system.Decide(inc, false).ok());
  ASSERT_TRUE(system.Decide(mul, true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 2);
}

TEST(CompeTest, TentativeCountersChargeQueries) {
  ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 9)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/3);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 9);
  EXPECT_EQ(system.query_state(q)->inconsistency, 1)
      << "one potential compensation";
  ASSERT_TRUE(system.EndQuery(q).ok());
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(et, true).ok());
  system.RunUntilQuiescent();
  // Decided: no more potential compensations.
  const EtId q2 = system.BeginQuery(0, /*epsilon=*/0);
  EXPECT_TRUE(system.TryRead(q2, 0).ok());
  ASSERT_TRUE(system.EndQuery(q2).ok());
}

TEST(CompeTest, EpsilonZeroQueryWaitsForDecision) {
  ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 9)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/0);
  Result<Value> direct = system.TryRead(q, 0);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsUnavailable());
  bool done = false;
  int64_t value = -1;
  system.Read(q, 0, [&](Result<Value> got) {
    ASSERT_TRUE(got.ok());
    value = got->AsInt();
    done = true;
  });
  system.RunFor(50'000);
  EXPECT_FALSE(done) << "blocked until the decision";
  ASSERT_TRUE(system.Decide(et, true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(done);
  EXPECT_EQ(value, 9);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(CompeTest, CompensationHitChargedToLiveQuery) {
  ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 9)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/5);
  ASSERT_TRUE(system.TryRead(q, 0).ok());  // read the dirty value
  ASSERT_TRUE(system.Decide(et, false).ok());
  EXPECT_EQ(system.query_state(q)->compensation_hits, 1);
  ASSERT_TRUE(system.EndQuery(q).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 0);
}

TEST(CompeTest, RestartClearsCompensationHitsWithOtherCounters) {
  // Regression: ResetForRestart() used to carry compensation_hits from the
  // abandoned attempt into the restarted query's accounting.
  ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 9)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/5);
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  ASSERT_TRUE(system.Decide(et, false).ok());
  ASSERT_EQ(system.query_state(q)->compensation_hits, 1);
  QueryState copy = *system.query_state(q);
  copy.ResetForRestart();
  EXPECT_EQ(copy.compensation_hits, 0)
      << "per-attempt counters must start over on restart";
  EXPECT_EQ(copy.inconsistency, 0);
  EXPECT_EQ(copy.restarts, 1);
  ASSERT_TRUE(system.EndQuery(q).ok());
  system.RunUntilQuiescent();
}

TEST(CompeTest, AbortedUpdatesExcludedFromSerialHistory) {
  ReplicatedSystem system(Config(Method::kCompe, 3, 41));
  std::vector<EtId> ets;
  for (int i = 0; i < 10; ++i) {
    ets.push_back(MustSubmit(system, i % 3, {Operation::Increment(0, 1)}));
  }
  system.RunUntilQuiescent();
  for (size_t i = 0; i < ets.size(); ++i) {
    ASSERT_TRUE(system.Decide(ets[i], i % 2 == 0).ok());
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 5);
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(sr.serializable) << sr.violation;
  EXPECT_EQ(sr.serial_order.size(), 5u) << "only committed updates remain";
}

TEST(CompeTest, DecideUnknownEtFails) {
  ReplicatedSystem system(Config(Method::kCompe));
  EXPECT_FALSE(system.Decide(4242, true).ok());
}

TEST(CompeTest, ForwardMethodsRejectDecisions) {
  ReplicatedSystem system(Config(Method::kCommu));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 1)});
  EXPECT_EQ(system.Decide(et, true).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompeTest, LogRetainedUntilStability) {
  auto config = Config(Method::kCompe);
  config.network.base_latency_us = 30'000;
  ReplicatedSystem system(config);
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 1)});
  EXPECT_EQ(system.site_mset_log(0).size(), 1)
      << "record held while rollback is possible";
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(et, true).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(system.site_mset_log(0).size(), 0);
}

}  // namespace
}  // namespace esr::core
