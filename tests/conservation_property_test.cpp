// Conservation property: under a balanced-transfer workload (every update
// ET moves an amount between two accounts), the global sum of all accounts
// is invariant in any one-copy-serializable execution. At quiescence every
// replica must therefore hold accounts summing to exactly zero — a sharp,
// whole-system correctness probe that catches lost, duplicated, or
// partially-applied MSets under any method and any failure pattern.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/workload.h"

namespace esr::core {
namespace {

struct Case {
  Method method;
  uint64_t seed;
  double loss;
  bool failures;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name(MethodToString(info.param.method));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed) +
         (info.param.loss > 0 ? "_lossy" : "") +
         (info.param.failures ? "_failures" : "");
}

class ConservationProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ConservationProperty, TransfersConserveTheGlobalSum) {
  const Case& c = GetParam();
  SystemConfig config;
  config.method = c.method;
  config.num_sites = 4;
  config.seed = c.seed;
  config.network.loss_probability = c.loss;
  config.network.jitter_us = 2'000;
  ReplicatedSystem system(config);
  if (c.failures) {
    system.failures().ScheduleCrash(sim::CrashSpec{1, 50'000, 200'000});
    system.failures().SchedulePartition(
        sim::PartitionSpec{{{0, 1}, {2, 3}}, 250'000, 400'000});
  }

  workload::WorkloadSpec spec;
  spec.seed = c.seed;
  spec.num_objects = 10;
  spec.update_fraction = 0.6;
  spec.update_kind = workload::WorkloadSpec::UpdateKind::kTransfer;
  spec.clients_per_site = 2;
  spec.think_time_us = 5'000;
  spec.duration_us = 500'000;
  workload::WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  system.RunUntilQuiescent();

  ASSERT_GT(result.updates_committed, 0);
  ASSERT_TRUE(system.Converged());
  for (SiteId s = 0; s < 4; ++s) {
    int64_t sum = 0;
    for (ObjectId account = 0; account < spec.num_objects; ++account) {
      const Value v = system.SiteValue(s, account);
      ASSERT_TRUE(v.is_int());
      sum += v.AsInt();
    }
    EXPECT_EQ(sum, 0) << "money created or destroyed at site " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ConservationProperty,
    ::testing::Values(Case{Method::kOrdup, 201, 0.0, false},
                      Case{Method::kOrdupTs, 202, 0.0, false},
                      Case{Method::kCommu, 203, 0.0, false},
                      Case{Method::kSync2pc, 204, 0.0, false},
                      Case{Method::kQuasiCopy, 205, 0.0, false},
                      Case{Method::kOrdup, 206, 0.2, true},
                      Case{Method::kOrdupTs, 207, 0.2, true},
                      Case{Method::kCommu, 208, 0.2, true},
                      Case{Method::kQuasiCopy, 209, 0.2, true}),
    CaseName);

// COMPE transfers with mixed commit/abort decisions: committed transfers
// conserve; aborted ones are compensated away entirely, so the sum is
// still zero.
TEST(ConservationProperty, CompeTransfersWithAbortsConserve) {
  SystemConfig config;
  config.method = Method::kCompe;
  config.num_sites = 3;
  config.seed = 210;
  ReplicatedSystem system(config);
  Rng rng(210);
  std::vector<EtId> ets;
  for (int i = 0; i < 40; ++i) {
    const ObjectId from = rng.Uniform(0, 9);
    const ObjectId to = (from + 1 + rng.Uniform(0, 8)) % 10;
    const int64_t amount = rng.Uniform(1, 50);
    auto r = system.SubmitUpdate(
        static_cast<SiteId>(rng.Uniform(0, 2)),
        {store::Operation::Increment(from, -amount),
         store::Operation::Increment(to, amount)});
    ASSERT_TRUE(r.ok());
    ets.push_back(*r);
    system.RunFor(rng.Uniform(1'000, 8'000));
  }
  for (size_t i = 0; i < ets.size(); ++i) {
    ASSERT_TRUE(system.Decide(ets[i], i % 3 != 0).ok());
  }
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Converged());
  int64_t sum = 0;
  for (ObjectId account = 0; account < 10; ++account) {
    sum += system.SiteValue(0, account).AsInt();
  }
  EXPECT_EQ(sum, 0);
}

}  // namespace
}  // namespace esr::core
