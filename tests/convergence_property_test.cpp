// Property sweep: for every asynchronous replica control method, across
// seeds, network conditions and workload shapes, (1) all replicas converge
// to an identical state at quiescence, (2) the update subhistory is
// serializable, and (3) the converged state equals the serial oracle — the
// paper's central convergence claim ("replicas always converge to global
// serializability").

#include <gtest/gtest.h>

#include "analysis/query_checker.h"
#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::MustSubmit;

struct Case {
  Method method;
  uint64_t seed;
  double loss;
  SimDuration jitter_us;
  bool fifo;
  Transport transport = Transport::kStableQueue;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name(MethodToString(info.param.method));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed) + "_loss" +
         std::to_string(static_cast<int>(info.param.loss * 100)) + "_j" +
         std::to_string(info.param.jitter_us) +
         (info.param.fifo ? "_fifo" : "_unord") +
         (info.param.transport == Transport::kPersistentPipe ? "_pipe" : "");
}

class ConvergenceProperty : public ::testing::TestWithParam<Case> {};

TEST_P(ConvergenceProperty, ReplicasConvergeToSerialOracle) {
  const Case& c = GetParam();
  SystemConfig config;
  config.method = c.method;
  config.num_sites = 4;
  config.seed = c.seed;
  config.network.loss_probability = c.loss;
  config.network.jitter_us = c.jitter_us;
  config.queue.fifo = c.fifo;
  config.transport = c.transport;
  ReplicatedSystem system(config);

  Rng rng(c.seed * 31 + 7);
  std::vector<EtId> tentative;
  const bool compe = c.method == Method::kCompe ||
                     c.method == Method::kCompeOrdered;
  const bool ritu = c.method == Method::kRituMulti ||
                    c.method == Method::kRituSingle;
  const bool ordered_ops = c.method == Method::kOrdup ||
                           c.method == Method::kOrdupTs ||
                           c.method == Method::kCompeOrdered;
  for (int i = 0; i < 40; ++i) {
    const SiteId origin = static_cast<SiteId>(rng.Uniform(0, 3));
    const ObjectId object = rng.Uniform(0, 5);
    std::vector<Operation> ops;
    if (ritu) {
      ops.push_back(Operation::TimestampedWrite(
          object, Value(rng.Uniform(0, 1000)), kZeroTimestamp));
    } else if (ordered_ops && rng.Bernoulli(0.5)) {
      // Ordered methods handle non-commutative operations.
      ops.push_back(Operation::Write(object, Value(rng.Uniform(0, 1000))));
    } else {
      ops.push_back(Operation::Increment(object, rng.Uniform(1, 9)));
    }
    auto submitted = system.SubmitUpdate(origin, std::move(ops));
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    if (compe) tentative.push_back(*submitted);
    if (rng.Bernoulli(0.3)) {
      system.RunFor(rng.Uniform(100, 5'000));
    }
  }
  system.RunUntilQuiescent();
  // COMPE: decide everything (mixed commits and aborts), then drain again.
  for (size_t i = 0; i < tentative.size(); ++i) {
    ASSERT_TRUE(system.Decide(tentative[i], i % 3 != 0).ok());
  }
  system.RunUntilQuiescent();

  // (1) replica convergence
  ASSERT_TRUE(system.Converged());

  // (2) update subhistory serializable
  auto sr = analysis::CheckUpdateSerializability(system.history(), 4);
  ASSERT_TRUE(sr.serializable) << sr.violation;

  // (3) converged state equals the serial oracle
  auto oracle = analysis::ComputeSerialState(system.history(),
                                             sr.serial_order);
  for (const auto& [object, value] : oracle) {
    for (SiteId s = 0; s < 4; ++s) {
      EXPECT_EQ(system.SiteValue(s, object), value)
          << "site " << s << " object " << object;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ConvergenceProperty,
    ::testing::Values(
        // Clean network.
        Case{Method::kOrdup, 1, 0.0, 200, true},
        Case{Method::kOrdupTs, 1, 0.0, 200, true},
        Case{Method::kCommu, 1, 0.0, 200, true},
        Case{Method::kRituMulti, 1, 0.0, 200, true},
        Case{Method::kRituSingle, 1, 0.0, 200, true},
        Case{Method::kCompe, 1, 0.0, 200, true},
        Case{Method::kCompeOrdered, 1, 0.0, 200, true},
        // Lossy network.
        Case{Method::kOrdup, 2, 0.25, 200, true},
        Case{Method::kOrdupTs, 2, 0.25, 200, true},
        Case{Method::kCommu, 2, 0.25, 200, true},
        Case{Method::kRituMulti, 2, 0.25, 200, true},
        Case{Method::kRituSingle, 2, 0.25, 200, true},
        Case{Method::kCompe, 2, 0.25, 200, true},
        Case{Method::kCompeOrdered, 2, 0.25, 200, true},
        // Heavy reordering; unordered queues where the method permits.
        Case{Method::kOrdup, 3, 0.0, 8'000, true},
        Case{Method::kOrdupTs, 3, 0.0, 8'000, true},
        Case{Method::kCommu, 3, 0.0, 8'000, false},
        Case{Method::kRituMulti, 3, 0.0, 8'000, true},
        Case{Method::kRituSingle, 3, 0.0, 8'000, false},
        Case{Method::kCompe, 3, 0.0, 8'000, false},
        Case{Method::kCompeOrdered, 3, 0.0, 8'000, true},
        // Loss + reordering, different seeds.
        Case{Method::kOrdup, 4, 0.15, 4'000, true},
        Case{Method::kCommu, 5, 0.15, 4'000, true},
        Case{Method::kRituMulti, 6, 0.15, 4'000, true},
        Case{Method::kRituSingle, 7, 0.15, 4'000, true},
        Case{Method::kCompe, 8, 0.15, 4'000, true},
        Case{Method::kCompeOrdered, 9, 0.15, 4'000, true},
        // Persistent-pipe transport, lossy + reordering.
        Case{Method::kOrdup, 10, 0.15, 4'000, true,
             Transport::kPersistentPipe},
        Case{Method::kOrdupTs, 11, 0.15, 4'000, true,
             Transport::kPersistentPipe},
        Case{Method::kCommu, 12, 0.15, 4'000, true,
             Transport::kPersistentPipe},
        Case{Method::kRituMulti, 13, 0.15, 4'000, true,
             Transport::kPersistentPipe},
        Case{Method::kCompe, 14, 0.15, 4'000, true,
             Transport::kPersistentPipe}),
    CaseName);

}  // namespace
}  // namespace esr::core
