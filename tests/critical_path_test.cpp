// Critical-path analyzer: golden waterfall decomposition on a scripted
// trace, aggregate-report invariants, and the headline behavioural check —
// inflating the sequencer round trip must shift the dominant segment to
// sequencer_rtt.

#include "analysis/critical_path.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>

#include "obs/hop_tracer.h"
#include "test_util.h"
#include "workload/workload.h"

namespace esr::analysis {
namespace {

using obs::EtTrace;
using obs::HopKind;
using obs::HopRecord;

HopRecord Hop(int64_t span, HopKind kind, int32_t msg_type, SiteId from,
              SiteId to, SimTime begin, SimTime arrive, SimTime end) {
  HopRecord h;
  h.span = span;
  h.kind = kind;
  h.msg_type = msg_type;
  h.from = from;
  h.to = to;
  h.begin = begin;
  h.arrive = arrive;
  h.end = end;
  return h;
}

/// A fully-instrumented two-replica ET with every milestone scripted:
/// submit 5, sequencer 10→30, commit 35, mset to the critical replica
/// 40/60/65, applied there at 70, ack 70/90/92, stable 100.
EtTrace ScriptedTrace() {
  const ProtocolTypes types;
  EtTrace t;
  t.et = 7;
  t.origin = 0;
  t.object_class = "counter";
  t.submit_time = 5;
  t.commit_time = 35;
  t.stable_time = 100;
  t.apply_time = {35, 70, 55};
  t.hops.push_back(Hop(1, HopKind::kSeqRtt, 0, 0, 2, 10, -1, 30));
  // Replica 2 finishes early: mset 40/48/50, ack closes at 60.
  t.hops.push_back(Hop(2, HopKind::kQueue, types.mset, 0, 2, 40, 48, 50));
  t.hops.push_back(Hop(3, HopKind::kOrderWait, 0, 2, 2, 50, -1, 55));
  t.hops.push_back(Hop(4, HopKind::kQueue, types.apply_ack, 2, 0, 55, 59, 60));
  // Replica 1 is the critical chain: its ack closes last (92).
  t.hops.push_back(Hop(5, HopKind::kQueue, types.mset, 0, 1, 40, 60, 65));
  t.hops.push_back(Hop(6, HopKind::kOrderWait, 0, 1, 1, 65, -1, 70));
  t.hops.push_back(Hop(7, HopKind::kQueue, types.apply_ack, 1, 0, 70, 90, 92));
  return t;
}

int64_t SegmentUs(const Waterfall& w, const std::string& name) {
  for (const Segment& s : w.segments) {
    if (s.name == name) return s.Duration();
  }
  ADD_FAILURE() << "no segment named " << name;
  return -1;
}

TEST(CriticalPathTest, GoldenWaterfallDecomposition) {
  const Waterfall w = BuildWaterfall(ScriptedTrace());
  EXPECT_EQ(w.et, 7);
  EXPECT_EQ(w.origin, 0);
  EXPECT_EQ(w.object_class, "counter");
  EXPECT_EQ(w.critical_site, 1) << "replica 1's ack closed last";
  EXPECT_EQ(w.CommitToStableUs(), 65);

  EXPECT_EQ(SegmentUs(w, "submit_wait"), 5);      // 5 -> 10
  EXPECT_EQ(SegmentUs(w, "sequencer_rtt"), 20);   // 10 -> 30
  EXPECT_EQ(SegmentUs(w, "commit_wait"), 5);      // 30 -> 35
  EXPECT_EQ(SegmentUs(w, "origin_queue_wait"), 5);  // 35 -> 40
  EXPECT_EQ(SegmentUs(w, "network_transit"), 20);   // 40 -> 60
  EXPECT_EQ(SegmentUs(w, "remote_queue_wait"), 5);  // 60 -> 65
  EXPECT_EQ(SegmentUs(w, "order_wait"), 5);         // 65 -> 70
  EXPECT_EQ(SegmentUs(w, "ack_transit"), 22);       // 70 -> 92
  EXPECT_EQ(SegmentUs(w, "stability_fan_in"), 8);   // 92 -> 100
}

TEST(CriticalPathTest, MissingMilestonesCollapseToZeroNotNegative) {
  // A trace with no sequencer and no acks (e.g. COMMU without stability
  // fan-in traced): every absent milestone collapses onto its predecessor,
  // and the segments still tile the windows exactly.
  const ProtocolTypes types;
  EtTrace t;
  t.et = 9;
  t.origin = 0;
  t.submit_time = 0;
  t.commit_time = 10;
  t.stable_time = 50;
  t.apply_time = {10, 30};
  t.hops.push_back(Hop(1, HopKind::kQueue, types.mset, 0, 1, 12, 25, 28));
  const Waterfall w = BuildWaterfall(t);
  int64_t pre = 0, post = 0;
  for (size_t i = 0; i < 3; ++i) pre += w.segments[i].Duration();
  for (size_t i = 3; i < w.segments.size(); ++i) {
    post += w.segments[i].Duration();
  }
  EXPECT_EQ(pre, 10);
  EXPECT_EQ(post, 40);
  EXPECT_EQ(SegmentUs(w, "sequencer_rtt"), 0);
  for (const Segment& s : w.segments) {
    EXPECT_GE(s.Duration(), 0) << s.name;
  }
}

TEST(CriticalPathTest, ReportAggregatesAndRanksSegments) {
  std::deque<EtTrace> traces;
  traces.push_back(ScriptedTrace());
  traces.push_back(ScriptedTrace());
  traces.back().et = 8;
  traces.back().object_class = "register";
  CriticalPathReport report = BuildReport(traces, "ordup");
  EXPECT_EQ(report.method, "ordup");
  EXPECT_EQ(report.traced_ets, 2);
  EXPECT_EQ(report.aborted_ets, 0);
  // ack_transit (22us) is the single largest segment of the scripted ET.
  EXPECT_EQ(report.dominant_segment, "ack_transit");
  ASSERT_EQ(report.by_class.size(), 2u);
  EXPECT_EQ(report.by_class[0].object_class, "counter");
  EXPECT_EQ(report.by_class[1].object_class, "register");
  EXPECT_EQ(report.lag_p50_us, 65);
  EXPECT_EQ(report.lag_p99_us, 65);

  const std::string table = RenderReportTable(report);
  EXPECT_NE(table.find("ack_transit"), std::string::npos);
  EXPECT_NE(table.find("dominant segment: ack_transit"), std::string::npos);

  const std::string jsonl = WaterfallsJsonl(traces, "ordup");
  EXPECT_NE(jsonl.find("\"kind\":\"report\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"et\":7"), std::string::npos);
}

/// Runs ORDUP with all updates originating at site 0 and the sequencer at
/// site 2, pinning the 0<->2 links (the sequencer round trip) to
/// `seq_link_latency_us` while the replica-propagation link to site 1
/// keeps the default latency.
CriticalPathReport RunAndReport(int64_t seq_link_latency_us) {
  core::SystemConfig config = test::Config(core::Method::kOrdup, 3, 21);
  config.record_hops = true;
  config.sequencer_site = 2;
  core::ReplicatedSystem system(config);
  system.network().SetLinkLatency(0, 2, seq_link_latency_us);
  system.network().SetLinkLatency(2, 0, seq_link_latency_us);
  for (int i = 0; i < 10; ++i) {
    test::MustSubmit(system, 0, {store::Operation::Increment(0, 1)});
    system.RunUntilQuiescent();
  }
  ProtocolTypes types;
  types.mset = core::kMsetMsg;
  types.apply_ack = core::kApplyAckMsg;
  types.stable = core::kStableMsg;
  return BuildReport(system.hop_tracer()->completed(), "ordup", types);
}

TEST(CriticalPathTest, InflatedSequencerLatencyShiftsDominantSegment) {
  // Fast sequencer links: the waterfall is propagation-bound.
  const CriticalPathReport baseline = RunAndReport(100);
  ASSERT_GT(baseline.traced_ets, 0);
  EXPECT_NE(baseline.dominant_segment, "sequencer_rtt")
      << "with a near-free sequencer the RTT should not dominate";

  // Same topology, sequencer links inflated 600x: the report must now
  // attribute the waterfall to the sequencer round trip.
  const CriticalPathReport slow_seq = RunAndReport(60'000);
  ASSERT_GT(slow_seq.traced_ets, 0);
  EXPECT_EQ(slow_seq.dominant_segment, "sequencer_rtt");
}

}  // namespace
}  // namespace esr::analysis
