// Determinism regression: a (configuration, seed) pair must fully
// determine an execution — identical final state digests, histories and
// protocol counters across repeated runs, for every method and transport.
// This is the property all the benchmark tables and property sweeps rest
// on; accidental nondeterminism (e.g., iteration-order-dependent protocol
// decisions) shows up here first.

#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/workload.h"

namespace esr::core {
namespace {

struct Fingerprint {
  std::vector<uint64_t> digests;
  int64_t updates = 0;
  int64_t queries = 0;
  int64_t msets_applied = 0;
  int64_t reads_recorded = 0;
  int64_t blocked_attempts = 0;
  int64_t restarts = 0;
  double inconsistency_sum = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint RunOnce(Method method, Transport transport, uint64_t seed,
                    bool adaptive_admission = false) {
  SystemConfig config;
  config.method = method;
  config.transport = transport;
  config.num_sites = 3;
  config.seed = seed;
  config.network.loss_probability = 0.15;
  config.network.jitter_us = 2'000;
  if (adaptive_admission) {
    config.admission.enabled = true;
    config.admission.initial_scale = 0.5;
  }
  ReplicatedSystem system(config);

  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_objects = 8;
  spec.update_fraction = 0.5;
  spec.clients_per_site = 2;
  spec.think_time_us = 4'000;
  spec.read_gap_us = 2'000;
  spec.query_epsilon = 2;
  spec.duration_us = 250'000;
  if (method == Method::kRituMulti || method == Method::kRituSingle) {
    spec.update_kind = workload::WorkloadSpec::UpdateKind::kTimestampedWrite;
  }
  if (method == Method::kCompe) {
    spec.compe_abort_probability = 0.2;
    spec.compe_decision_delay_us = 10'000;
  }
  workload::WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  system.RunUntilQuiescent();

  Fingerprint fp;
  for (SiteId s = 0; s < 3; ++s) fp.digests.push_back(system.SiteDigest(s));
  fp.updates = result.updates_committed;
  fp.queries = result.queries_completed;
  fp.msets_applied = system.counters().Get("esr.msets_applied");
  fp.reads_recorded = static_cast<int64_t>(system.history().reads().size());
  fp.blocked_attempts = result.query_blocked_attempts;
  fp.restarts = result.query_restarts;
  fp.inconsistency_sum = result.query_inconsistency.sum();
  return fp;
}

class Determinism
    : public ::testing::TestWithParam<std::pair<Method, Transport>> {};

TEST_P(Determinism, IdenticalRunsProduceIdenticalFingerprints) {
  const auto& [method, transport] = GetParam();
  const Fingerprint a = RunOnce(method, transport, 777);
  const Fingerprint b = RunOnce(method, transport, 777);
  EXPECT_EQ(a, b);
  // And a different seed genuinely changes the execution.
  const Fingerprint c = RunOnce(method, transport, 778);
  EXPECT_FALSE(a == c) << "seed must matter";
}

TEST(AdmissionDeterminism, AdaptiveControllerPreservesDeterminism) {
  // The admission loop samples only simulated-time state, so enabling it
  // must not cost the (configuration, seed) -> execution guarantee.
  for (Method method :
       {Method::kOrdup, Method::kOrdupTs, Method::kCommu,
        Method::kRituSingle}) {
    const Fingerprint a =
        RunOnce(method, Transport::kStableQueue, 991, /*adaptive=*/true);
    const Fingerprint b =
        RunOnce(method, Transport::kStableQueue, 991, /*adaptive=*/true);
    EXPECT_EQ(a, b) << "method " << MethodToString(method);
    // And the controller genuinely changes the execution relative to
    // static admission (it grants different effective budgets).
    const Fingerprint c =
        RunOnce(method, Transport::kStableQueue, 991, /*adaptive=*/false);
    EXPECT_FALSE(a == c)
        << "adaptive admission had no effect for " << MethodToString(method);
  }
}

TEST(BatchingDeterminism, BatchedMatchesUnbatchedFinalState) {
  // Group sequencing changes message timing, not semantics: under a
  // commutative increment-only schedule the drained final state must be
  // identical with batching on or off, and the batched execution itself
  // must remain a pure function of (config, seed). ORDUP-TS consumes no
  // sequencer (decentralized Lamport ordering) — it rides along to pin
  // down that the knobs are inert there.
  using store::Operation;
  for (Method method :
       {Method::kOrdup, Method::kOrdupTs, Method::kCompeOrdered}) {
    SCOPED_TRACE(std::string(MethodToString(method)));
    auto run = [&](int32_t batch_max, SimDuration linger_us) {
      SystemConfig config = test::Config(method, 3, 881);
      config.seq_batch_max = batch_max;
      config.seq_batch_linger_us = linger_us;
      ReplicatedSystem system(config);
      const bool compe = method == Method::kCompeOrdered;
      for (int i = 0; i < 12; ++i) {
        // Two concurrent submissions per round give batches something to
        // coalesce.
        const EtId a =
            test::MustSubmit(system, 1, {Operation::Increment(0, 1)});
        const EtId b =
            test::MustSubmit(system, 2, {Operation::Increment(1, i)});
        if (compe) {
          EXPECT_TRUE(system.Decide(a, true).ok());
          EXPECT_TRUE(system.Decide(b, true).ok());
        }
        system.RunFor(8'000);
      }
      system.RunUntilQuiescent();
      EXPECT_TRUE(system.Converged());
      std::vector<uint64_t> digests;
      for (SiteId s = 0; s < 3; ++s) digests.push_back(system.SiteDigest(s));
      return digests;
    };
    const std::vector<uint64_t> unbatched = run(1, 0);
    const std::vector<uint64_t> batched = run(8, 1'000);
    const std::vector<uint64_t> batched_again = run(8, 1'000);
    EXPECT_EQ(batched, batched_again) << "batched run must be deterministic";
    EXPECT_EQ(unbatched, batched)
        << "batching must not change the converged final state";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, Determinism,
    ::testing::Values(
        std::make_pair(Method::kOrdup, Transport::kStableQueue),
        std::make_pair(Method::kOrdupTs, Transport::kStableQueue),
        std::make_pair(Method::kCommu, Transport::kStableQueue),
        std::make_pair(Method::kCommu, Transport::kPersistentPipe),
        std::make_pair(Method::kRituMulti, Transport::kStableQueue),
        std::make_pair(Method::kRituSingle, Transport::kStableQueue),
        std::make_pair(Method::kCompe, Transport::kStableQueue),
        std::make_pair(Method::kSync2pc, Transport::kStableQueue),
        std::make_pair(Method::kSyncQuorum, Transport::kStableQueue),
        std::make_pair(Method::kQuasiCopy, Transport::kStableQueue)),
    [](const ::testing::TestParamInfo<std::pair<Method, Transport>>& info) {
      std::string name(MethodToString(info.param.first));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      if (info.param.second == Transport::kPersistentPipe) name += "_pipe";
      return name;
    });

}  // namespace
}  // namespace esr::core
