// Property sweep over epsilon: every completed query's charged
// inconsistency is within its epsilon; epsilon = 0 queries are one-copy
// serializable for the methods that promise it (ORDUP strict, RITU-MV
// snapshots); and the measured per-query drift never exceeds what the
// method charged for ORDUP (whose charge is exactly the conflicting
// overlap).

#include <gtest/gtest.h>

#include "analysis/query_checker.h"
#include "analysis/sr_checker.h"
#include "test_util.h"
#include "workload/workload.h"

namespace esr::core {
namespace {

struct Case {
  Method method;
  int64_t epsilon;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name(MethodToString(info.param.method));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_eps" +
         (info.param.epsilon == kUnboundedEpsilon
              ? std::string("inf")
              : std::to_string(info.param.epsilon)) +
         "_seed" + std::to_string(info.param.seed);
}

class EpsilonBoundProperty : public ::testing::TestWithParam<Case> {};

/// Runs the sweep workload and asserts the per-query bound: every
/// completed query's charged inconsistency stays within the *declared*
/// epsilon. With `adaptive_admission` the controller may tighten the
/// effective budget below the declaration, so the declared bound must hold
/// a fortiori.
void RunBoundSweep(const Case& c, bool adaptive_admission) {
  SystemConfig config;
  config.method = c.method;
  config.num_sites = 3;
  config.seed = c.seed;
  config.network.jitter_us = 1'000;
  if (adaptive_admission) {
    config.admission.enabled = true;
    config.admission.initial_scale = 1.0;  // start at the declared max
  }
  ReplicatedSystem system(config);

  workload::WorkloadSpec spec;
  spec.seed = c.seed;
  spec.num_objects = 8;
  spec.update_fraction = 0.5;
  spec.reads_per_query = 3;
  spec.read_gap_us = 4'000;  // queries span time so drift accrues
  spec.query_epsilon = c.epsilon;
  spec.clients_per_site = 2;
  spec.duration_us = 300'000;
  spec.think_time_us = 3'000;
  if (c.method == Method::kRituMulti || c.method == Method::kRituSingle) {
    spec.update_kind = workload::WorkloadSpec::UpdateKind::kTimestampedWrite;
  }
  workload::WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  system.RunUntilQuiescent();

  ASSERT_GT(result.queries_completed, 0);
  ASSERT_GT(result.updates_committed, 0);
  ASSERT_TRUE(system.Converged());

  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  ASSERT_TRUE(sr.serializable) << sr.violation;
  auto reports = analysis::AnalyzeQueries(system.history(), sr.serial_order);
  ASSERT_FALSE(reports.empty());
  for (const auto& r : reports) {
    if (c.epsilon != kUnboundedEpsilon) {
      EXPECT_LE(r.charged, c.epsilon) << "query " << r.query;
    }
    if (c.epsilon == 0 &&
        (c.method == Method::kOrdup || c.method == Method::kRituMulti)) {
      EXPECT_TRUE(r.prefix_consistent)
          << "epsilon=0 query " << r.query << " must be 1SR under "
          << MethodToString(c.method);
    }
  }
}

TEST_P(EpsilonBoundProperty, ChargedWithinEpsilonAndZeroMeansSr) {
  RunBoundSweep(GetParam(), /*adaptive_admission=*/false);
}

TEST_P(EpsilonBoundProperty, ChargedWithinDeclaredEpsilonUnderAdaptation) {
  RunBoundSweep(GetParam(), /*adaptive_admission=*/true);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EpsilonBoundProperty,
    ::testing::Values(Case{Method::kOrdup, 0, 11},
                      Case{Method::kOrdup, 2, 12},
                      Case{Method::kOrdup, 8, 13},
                      Case{Method::kOrdup, kUnboundedEpsilon, 14},
                      Case{Method::kCommu, 0, 15},
                      Case{Method::kCommu, 2, 16},
                      Case{Method::kCommu, 8, 17},
                      Case{Method::kCommu, kUnboundedEpsilon, 18},
                      Case{Method::kRituMulti, 0, 19},
                      Case{Method::kRituMulti, 2, 20},
                      Case{Method::kRituMulti, kUnboundedEpsilon, 21},
                      Case{Method::kRituSingle, 2, 22},
                      Case{Method::kRituSingle, kUnboundedEpsilon, 23}),
    CaseName);

// ORDUP's charge is exactly its conflicting overlap: the observed drift a
// query experienced is bounded by what it was charged.
TEST(OrdupChargeExactness, ObservedConflictsMatchCharged) {
  SystemConfig config;
  config.method = Method::kOrdup;
  config.num_sites = 3;
  config.seed = 77;
  ReplicatedSystem system(config);

  workload::WorkloadSpec spec;
  spec.seed = 77;
  spec.num_objects = 4;
  spec.update_fraction = 0.5;
  spec.reads_per_query = 4;
  spec.query_epsilon = kUnboundedEpsilon;
  spec.duration_us = 200'000;
  spec.think_time_us = 2'000;
  workload::WorkloadRunner runner(&system, spec);
  (void)runner.Run();
  system.RunUntilQuiescent();

  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  ASSERT_TRUE(sr.serializable);
  auto reports = analysis::AnalyzeQueries(system.history(), sr.serial_order);
  ASSERT_FALSE(reports.empty());
  for (const auto& r : reports) {
    EXPECT_LE(r.observed_conflicts, r.charged)
        << "drift past the pin must have been charged (query " << r.query
        << ")";
  }
}

}  // namespace
}  // namespace esr::core
