// Tests of the flat-log epsilon-serializability checker, including a
// faithful reproduction of the paper's worked example log (1).

#include "analysis/esr_log.h"

#include <gtest/gtest.h>

namespace esr::analysis {
namespace {

TEST(ParseLogTest, ParsesPaperNotation) {
  auto log = ParseLog("R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)");
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->ops.size(), 6u);
  EXPECT_EQ(log->ops[0], (LogOp{1, false, 0}));  // a -> object 0
  EXPECT_EQ(log->ops[1], (LogOp{1, true, 1}));   // b -> object 1
  EXPECT_EQ(log->ops[4], (LogOp{2, true, 0}));
}

TEST(ParseLogTest, WhitespaceOptionalMultiDigitIds) {
  auto log = ParseLog("R12(x)W3(long_name)");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->ops[0].transaction, 12);
  EXPECT_EQ(log->ops[1].object, 1);
}

TEST(ParseLogTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseLog("").ok());
  EXPECT_FALSE(ParseLog("X1(a)").ok());
  EXPECT_FALSE(ParseLog("R(a)").ok());
  EXPECT_FALSE(ParseLog("R1 a").ok());
  EXPECT_FALSE(ParseLog("R1(").ok());
  EXPECT_FALSE(ParseLog("R1()").ok());
}

TEST(FlatLogTest, ClassifiesUpdateAndQueryTransactions) {
  auto log = ParseLog("R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->UpdateTransactions(), (std::vector<EtId>{1, 2}));
  EXPECT_EQ(log->QueryTransactions(), (std::vector<EtId>{3}));
}

// The paper's example log (1): R1(a) W1(b) W2(b) R3(a) W2(a) R3(b).
// "Even though [the second update] and Q3 are not SR, the deletion of Q3
// results in the log being an SRlog ... As a result, log (1) still
// qualifies as an epsilon-serial log."
TEST(EsrLogTest, PaperExampleLog1IsEpsilonSerialButNotSerializable) {
  auto log = ParseLog("R1(a) W1(b) W2(b) R3(a) W2(a) R3(b)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  EXPECT_TRUE(result.epsilon_serializable)
      << "updates alone form a serial log";
  EXPECT_FALSE(result.fully_serializable)
      << "Q3 reads a before W2(a) but b after W2(b): no serial position";
  ASSERT_EQ(result.overlaps.size(), 1u);
  EXPECT_EQ(result.overlaps[0].query, 3);
  EXPECT_EQ(result.overlaps[0].overlapping_updates, (std::vector<EtId>{2}))
      << "transaction 1 finished before the query began; only the "
         "interleaved update overlaps";
}

TEST(EsrLogTest, SerialLogIsBothSerializableAndEpsilonSerial) {
  auto log = ParseLog("R1(a) W1(a) R2(a) W2(a) R3(a)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  EXPECT_TRUE(result.epsilon_serializable);
  EXPECT_TRUE(result.fully_serializable);
  ASSERT_EQ(result.overlaps.size(), 1u);
  EXPECT_TRUE(result.overlaps[0].overlapping_updates.empty())
      << "empty overlap: the query is SR (paper section 2.1)";
}

TEST(EsrLogTest, ConflictingUpdatesInterleavedAreNotEpsilonSerial) {
  // Two updates write a and b in opposite orders around each other: the
  // update subhistory itself has a cycle — not even epsilon-serial.
  auto log = ParseLog("W1(a) W2(a) W2(b) W1(b)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  EXPECT_FALSE(result.epsilon_serializable);
  EXPECT_FALSE(result.fully_serializable);
}

TEST(EsrLogTest, OverlapRequiresTouchingQueryObjects) {
  // The update runs during the query but writes only object c, which the
  // query never reads: no inconsistency can flow, so no overlap ("the term
  // update ETs refers here to the set of update ETs that actually affect
  // objects that the query ET seeks to access").
  auto log = ParseLog("R3(a) W2(c) W2(c) R3(b)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  ASSERT_EQ(result.overlaps.size(), 1u);
  EXPECT_TRUE(result.overlaps[0].overlapping_updates.empty());
}

TEST(EsrLogTest, UpdateStartedDuringQueryCounts) {
  auto log = ParseLog("R3(a) W2(a) R3(a)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  ASSERT_EQ(result.overlaps.size(), 1u);
  EXPECT_EQ(result.overlaps[0].overlapping_updates, (std::vector<EtId>{2}));
}

TEST(EsrLogTest, UpdateFinishedBeforeQueryDoesNotCount) {
  auto log = ParseLog("W2(a) W2(b) R3(a) R3(b)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  ASSERT_EQ(result.overlaps.size(), 1u);
  EXPECT_TRUE(result.overlaps[0].overlapping_updates.empty());
  EXPECT_TRUE(result.fully_serializable);
}

TEST(EsrLogTest, MultipleQueriesEachGetOverlaps) {
  auto log = ParseLog("R4(a) W1(a) R4(a) R5(b) W2(b) R5(b)");
  ASSERT_TRUE(log.ok());
  auto result = CheckEsrLog(*log);
  ASSERT_EQ(result.overlaps.size(), 2u);
  EXPECT_EQ(result.overlaps[0].query, 4);
  EXPECT_EQ(result.overlaps[0].overlapping_updates, (std::vector<EtId>{1}));
  EXPECT_EQ(result.overlaps[1].query, 5);
  EXPECT_EQ(result.overlaps[1].overlapping_updates, (std::vector<EtId>{2}));
}

TEST(IsSerializableLogTest, SubsetSelection) {
  auto log = ParseLog("W1(a) W2(a) W2(b) W1(b)");
  ASSERT_TRUE(log.ok());
  EXPECT_FALSE(IsSerializableLog(*log, {1, 2}));
  EXPECT_TRUE(IsSerializableLog(*log, {1})) << "a single txn is serial";
  EXPECT_TRUE(IsSerializableLog(*log, {2}));
  EXPECT_TRUE(IsSerializableLog(*log, {})) << "empty set trivially SR";
}

}  // namespace
}  // namespace esr::analysis
