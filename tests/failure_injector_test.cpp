#include "sim/failure_injector.h"

#include <gtest/gtest.h>

namespace esr::sim {
namespace {

TEST(FailureInjectorTest, CrashAndRestartToggleSite) {
  Simulator sim;
  Network net(&sim, 3, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  int crashes = 0, restarts = 0;
  inject.on_crash = [&](SiteId, bool) { ++crashes; };
  inject.on_restart = [&](SiteId, bool) { ++restarts; };

  inject.ScheduleCrash(CrashSpec{/*site=*/1, /*crash_at=*/100,
                                 /*restart_at=*/200});
  sim.RunUntil(150);
  EXPECT_FALSE(net.SiteUp(1));
  EXPECT_EQ(crashes, 1);
  sim.Run();
  EXPECT_TRUE(net.SiteUp(1));
  EXPECT_EQ(restarts, 1);
}

TEST(FailureInjectorTest, PermanentCrashNeverRestarts) {
  Simulator sim;
  Network net(&sim, 2, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  inject.ScheduleCrash(CrashSpec{0, 50, kSimTimeMax});
  sim.Run();
  EXPECT_FALSE(net.SiteUp(0));
}

TEST(FailureInjectorTest, PartitionScheduleAppliesAndHeals) {
  Simulator sim;
  Network net(&sim, 4, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  inject.SchedulePartition(PartitionSpec{{{0, 1}, {2, 3}}, 100, 300});
  sim.RunUntil(200);
  EXPECT_TRUE(net.Partitioned(0, 2));
  sim.Run();
  EXPECT_FALSE(net.Partitioned(0, 2));
}

TEST(FailureInjectorTest, RandomCrashesRespectHorizon) {
  Simulator sim;
  Network net(&sim, 3, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 7);
  int crashes = 0;
  inject.on_crash = [&](SiteId, bool) { ++crashes; };
  inject.ScheduleRandomCrashes(/*crashes_per_second_per_site=*/50.0,
                               /*downtime_us=*/1'000,
                               /*horizon=*/1'000'000);
  sim.Run();
  EXPECT_GT(crashes, 0);
  // Every restart happened and all sites are back up at the end.
  for (SiteId s = 0; s < 3; ++s) EXPECT_TRUE(net.SiteUp(s));
}

TEST(FailureInjectorTest, OverlappingCrashWindowsKeepSiteDownUntilLast) {
  // Random crash schedules can overlap a scripted window. The site must
  // stay down until the *last* covering window ends, fire the crash/restart
  // hooks exactly once, and OR the amnesia flag across the windows.
  Simulator sim;
  Network net(&sim, 2, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  int crashes = 0, restarts = 0;
  bool restart_amnesia = false;
  inject.on_crash = [&](SiteId, bool) { ++crashes; };
  inject.on_restart = [&](SiteId, bool amnesia) {
    ++restarts;
    restart_amnesia = amnesia;
  };
  inject.ScheduleCrash(CrashSpec{/*site=*/0, /*crash_at=*/100,
                                 /*restart_at=*/300});
  inject.ScheduleCrash(CrashSpec{/*site=*/0, /*crash_at=*/200,
                                 /*restart_at=*/500, /*amnesia=*/true});
  sim.RunUntil(250);
  EXPECT_FALSE(net.SiteUp(0));
  EXPECT_EQ(inject.DownDepth(0), 2);
  sim.RunUntil(400);  // first window's restart fired; second still covers it
  EXPECT_FALSE(net.SiteUp(0));
  EXPECT_EQ(inject.DownDepth(0), 1);
  EXPECT_EQ(restarts, 0);
  sim.Run();
  EXPECT_TRUE(net.SiteUp(0));
  EXPECT_EQ(inject.DownDepth(0), 0);
  EXPECT_EQ(crashes, 1);
  EXPECT_EQ(restarts, 1);
  EXPECT_TRUE(restart_amnesia);  // OR'd from the second window
}

TEST(FailureInjectorTest, RestartInsidePartitionWindowKeepsLinksCut) {
  // A random crash landing inside an active partition window must not
  // resurrect cross-partition links when the site restarts.
  Simulator sim;
  Network net(&sim, 4, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  inject.SchedulePartition(PartitionSpec{{{0, 1}, {2, 3}}, 100, 1'000});
  inject.ScheduleCrash(CrashSpec{/*site=*/2, /*crash_at=*/200,
                                 /*restart_at=*/400});
  sim.RunUntil(500);
  EXPECT_TRUE(net.SiteUp(2));           // the site itself is back...
  EXPECT_TRUE(net.Partitioned(0, 2));   // ...but the partition still holds
  EXPECT_FALSE(net.Partitioned(2, 3));  // same-group link unaffected
  sim.Run();
  EXPECT_FALSE(net.Partitioned(0, 2));  // heals on schedule, not on restart
}

TEST(FailureInjectorTest, ZeroRateSchedulesNothing) {
  Simulator sim;
  Network net(&sim, 2, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 7);
  inject.ScheduleRandomCrashes(0.0, 1000, 1'000'000);
  EXPECT_TRUE(sim.Quiescent());
}

}  // namespace
}  // namespace esr::sim
