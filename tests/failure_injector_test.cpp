#include "sim/failure_injector.h"

#include <gtest/gtest.h>

namespace esr::sim {
namespace {

TEST(FailureInjectorTest, CrashAndRestartToggleSite) {
  Simulator sim;
  Network net(&sim, 3, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  int crashes = 0, restarts = 0;
  inject.on_crash = [&](SiteId) { ++crashes; };
  inject.on_restart = [&](SiteId) { ++restarts; };

  inject.ScheduleCrash(CrashSpec{/*site=*/1, /*crash_at=*/100,
                                 /*restart_at=*/200});
  sim.RunUntil(150);
  EXPECT_FALSE(net.SiteUp(1));
  EXPECT_EQ(crashes, 1);
  sim.Run();
  EXPECT_TRUE(net.SiteUp(1));
  EXPECT_EQ(restarts, 1);
}

TEST(FailureInjectorTest, PermanentCrashNeverRestarts) {
  Simulator sim;
  Network net(&sim, 2, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  inject.ScheduleCrash(CrashSpec{0, 50, kSimTimeMax});
  sim.Run();
  EXPECT_FALSE(net.SiteUp(0));
}

TEST(FailureInjectorTest, PartitionScheduleAppliesAndHeals) {
  Simulator sim;
  Network net(&sim, 4, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 2);
  inject.SchedulePartition(PartitionSpec{{{0, 1}, {2, 3}}, 100, 300});
  sim.RunUntil(200);
  EXPECT_TRUE(net.Partitioned(0, 2));
  sim.Run();
  EXPECT_FALSE(net.Partitioned(0, 2));
}

TEST(FailureInjectorTest, RandomCrashesRespectHorizon) {
  Simulator sim;
  Network net(&sim, 3, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 7);
  int crashes = 0;
  inject.on_crash = [&](SiteId) { ++crashes; };
  inject.ScheduleRandomCrashes(/*crashes_per_second_per_site=*/50.0,
                               /*downtime_us=*/1'000,
                               /*horizon=*/1'000'000);
  sim.Run();
  EXPECT_GT(crashes, 0);
  // Every restart happened and all sites are back up at the end.
  for (SiteId s = 0; s < 3; ++s) EXPECT_TRUE(net.SiteUp(s));
}

TEST(FailureInjectorTest, ZeroRateSchedulesNothing) {
  Simulator sim;
  Network net(&sim, 2, NetworkConfig{}, 1);
  FailureInjector inject(&sim, &net, 7);
  inject.ScheduleRandomCrashes(0.0, 1000, 1'000'000);
  EXPECT_TRUE(sim.Quiescent());
}

}  // namespace
}  // namespace esr::sim
