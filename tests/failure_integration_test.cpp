// Failure-injection integration tests: crashes, partitions and lossy links
// against the full replica control stack. The paper's robustness claim: the
// methods work "in face of very slow links, network partitions, and site
// failures" because stable queues persistently retry.

#include <gtest/gtest.h>

#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(FailureIntegrationTest, CommuSurvivesSiteCrashAndRestart) {
  auto config = Config(Method::kCommu, 3, 51);
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(
      sim::CrashSpec{/*site=*/2, /*crash_at=*/5'000, /*restart_at=*/400'000});
  for (int i = 0; i < 10; ++i) {
    MustSubmit(system, i % 2, {Operation::Increment(0, 1)});
    system.RunFor(2'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 10)
      << "restarted site catches up via stable-queue retries";
}

TEST(FailureIntegrationTest, OrdupSurvivesSequencerSiteCrash) {
  auto config = Config(Method::kOrdup, 3, 53);
  config.sequencer_site = 0;
  ReplicatedSystem system(config);
  // Sequencer site crashes; updates submitted during the outage commit
  // only after it restarts (ordering is unavailable meanwhile).
  system.failures().ScheduleCrash(sim::CrashSpec{0, 1'000, 300'000});
  system.RunFor(5'000);
  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    MustSubmit(system, 1, {Operation::Increment(0, 1)},
               [&](Status s) { committed += s.ok() ? 1 : 0; });
  }
  system.RunFor(100'000);
  EXPECT_EQ(committed, 0) << "no order numbers while the sequencer is down";
  system.RunUntilQuiescent();
  EXPECT_EQ(committed, 5);
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 5);
}

TEST(FailureIntegrationTest, PartitionedAsyncUpdatesMergeAfterHeal) {
  auto config = Config(Method::kCommu, 4, 55);
  ReplicatedSystem system(config);
  system.network().SetPartition({{0, 1}, {2, 3}});
  // Both partitions keep committing locally — the async availability win.
  // Distinct deltas per site so partial states are distinguishable.
  int committed = 0;
  for (int i = 0; i < 4; ++i) {
    MustSubmit(system, i, {Operation::Increment(0, 1 << i)},
               [&](Status s) { committed += s.ok() ? 1 : 0; });
  }
  system.RunFor(200'000);
  EXPECT_EQ(committed, 4) << "async commits proceed inside both partitions";
  EXPECT_FALSE(system.Converged()) << "divergence while partitioned";
  system.network().HealPartition();
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(3, 0).AsInt(), 1 + 2 + 4 + 8);
}

TEST(FailureIntegrationTest, RituMergesTimestampedWritesAfterPartition) {
  auto config = Config(Method::kRituSingle, 4, 57);
  ReplicatedSystem system(config);
  system.network().SetPartition({{0, 1}, {2, 3}});
  MustSubmit(system, 0, {Operation::TimestampedWrite(0, Value(int64_t{111}),
                                                     kZeroTimestamp)});
  system.RunFor(10'000);
  MustSubmit(system, 2, {Operation::TimestampedWrite(0, Value(int64_t{222}),
                                                     kZeroTimestamp)});
  system.RunFor(100'000);
  system.network().HealPartition();
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  // Both sides applied the same Thomas-rule winner.
  const int64_t v = system.SiteValue(0, 0).AsInt();
  EXPECT_TRUE(v == 111 || v == 222);
  for (SiteId s = 1; s < 4; ++s) {
    EXPECT_EQ(system.SiteValue(s, 0).AsInt(), v);
  }
}

TEST(FailureIntegrationTest, QueriesKeepAnsweringDuringPartition) {
  auto config = Config(Method::kCommu, 4, 59);
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 7)});
  system.RunUntilQuiescent();
  system.network().SetPartition({{0, 1}, {2, 3}});
  // Site 3 still answers (possibly stale) queries — the availability story.
  auto values = RunQuery(system, 3, kUnboundedEpsilon, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 7);
  system.network().HealPartition();
  system.RunUntilQuiescent();
}

TEST(FailureIntegrationTest, SlowLinkDelaysButPreservesConvergence) {
  auto config = Config(Method::kOrdup, 3, 61);
  ReplicatedSystem system(config);
  system.network().SetLinkLatency(0, 2, 2'000'000);  // 2 s one-way
  MustSubmit(system, 0, {Operation::Write(0, Value(int64_t{5}))});
  system.RunFor(100'000);
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 5);
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 0) << "slow link lags";
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 5);
  EXPECT_TRUE(system.Converged());
}

TEST(FailureIntegrationTest, CompeDecisionsSurvivePartition) {
  auto config = Config(Method::kCompe, 3, 63);
  ReplicatedSystem system(config);
  const EtId keep = MustSubmit(system, 0, {Operation::Increment(0, 5)});
  const EtId drop = MustSubmit(system, 0, {Operation::Increment(0, 50)});
  system.RunUntilQuiescent();
  system.network().SetPartition({{0}, {1, 2}});
  ASSERT_TRUE(system.Decide(keep, true).ok());
  ASSERT_TRUE(system.Decide(drop, false).ok());
  system.RunFor(200'000);
  // Replicas have not heard the decisions yet.
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 55);
  system.network().HealPartition();
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 5);
}

TEST(FailureIntegrationTest, RepeatedCrashesStillConverge) {
  auto config = Config(Method::kCommu, 3, 65);
  config.network.loss_probability = 0.1;
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(sim::CrashSpec{1, 10'000, 60'000});
  system.failures().ScheduleCrash(sim::CrashSpec{1, 120'000, 180'000});
  system.failures().ScheduleCrash(sim::CrashSpec{2, 50'000, 90'000});
  for (int i = 0; i < 20; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 20);
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(sr.serializable) << sr.violation;
}

}  // namespace
}  // namespace esr::core
