#include "analysis/history.h"

#include <gtest/gtest.h>

namespace esr::analysis {
namespace {

UpdateRecord MakeUpdate(EtId et, SiteId origin) {
  UpdateRecord u;
  u.et = et;
  u.origin = origin;
  u.ops = {store::Operation::Increment(0, 1)};
  return u;
}

TEST(HistoryTest, UpdatesIndexedByEt) {
  HistoryRecorder h;
  h.RecordUpdateCommit(MakeUpdate(5, 1));
  h.RecordUpdateCommit(MakeUpdate(9, 2));
  ASSERT_NE(h.FindUpdate(5), nullptr);
  EXPECT_EQ(h.FindUpdate(5)->origin, 1);
  EXPECT_EQ(h.FindUpdate(404), nullptr);
  EXPECT_EQ(h.updates().size(), 2u);
}

TEST(HistoryTest, AbortMarksExistingUpdate) {
  HistoryRecorder h;
  h.RecordUpdateCommit(MakeUpdate(5, 1));
  h.RecordUpdateAborted(5);
  EXPECT_TRUE(h.FindUpdate(5)->aborted);
  h.RecordUpdateAborted(404);  // unknown: no-op
}

TEST(HistoryTest, ApplySequencesPerSite) {
  HistoryRecorder h;
  EXPECT_EQ(h.RecordApply(1, 0, 10), 1);
  EXPECT_EQ(h.RecordApply(2, 0, 20), 2);
  EXPECT_EQ(h.RecordApply(1, 1, 30), 1);
  ASSERT_EQ(h.site_applies(0).size(), 2u);
  EXPECT_EQ(h.site_applies(0)[1].et, 2);
  EXPECT_EQ(h.site_applies(1).size(), 1u);
  EXPECT_TRUE(h.site_applies(7).empty());
}

TEST(HistoryTest, ApplyCountAcrossSites) {
  HistoryRecorder h;
  h.RecordApply(1, 0, 10);
  h.RecordApply(1, 1, 11);
  h.RecordApply(2, 0, 12);
  EXPECT_EQ(h.ApplyCount(1), 2);
  EXPECT_EQ(h.ApplyCount(2), 1);
  EXPECT_EQ(h.ApplyCount(3), 0);
}

TEST(HistoryTest, ReadsAndQueriesAppend) {
  HistoryRecorder h;
  ReadRecord r;
  r.query = 7;
  r.object = 3;
  h.RecordRead(r);
  QueryRecord q;
  q.query = 7;
  q.completed = true;
  h.RecordQueryEnd(q);
  EXPECT_EQ(h.reads().size(), 1u);
  EXPECT_EQ(h.queries().size(), 1u);
}

}  // namespace
}  // namespace esr::analysis
