// Hop-level causal tracing regressions: recording is off by default, costs
// nothing when off, and when on is fully determined by (configuration,
// seed) — identical runs produce identical hop digests even under crash and
// partition injection. The per-ET traces must also be *complete*: the
// telescoped waterfall segments tile the commit→stable window exactly, so
// the critical-path report attributes all of the stability lag the
// EtTracer measures.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/critical_path.h"
#include "obs/hop_tracer.h"
#include "test_util.h"
#include "workload/workload.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;

analysis::ProtocolTypes CoreTypes() {
  analysis::ProtocolTypes types;
  types.mset = kMsetMsg;
  types.apply_ack = kApplyAckMsg;
  types.stable = kStableMsg;
  return types;
}

struct HopFingerprint {
  uint64_t digest = 0;
  int64_t completed = 0;
  int64_t dropped_ets = 0;
  int64_t dropped_hops = 0;

  friend bool operator==(const HopFingerprint&, const HopFingerprint&) =
      default;
};

HopFingerprint RunTraced(Method method, uint64_t seed, bool inject_faults) {
  SystemConfig config = Config(method, 3, seed);
  config.record_hops = true;
  config.trace_max_ets = 256;
  config.network.loss_probability = 0.15;
  config.network.jitter_us = 2'000;
  ReplicatedSystem system(config);
  if (inject_faults) {
    system.failures().ScheduleCrash(
        sim::CrashSpec{/*site=*/2, /*crash_at=*/40'000, /*restart_at=*/
                       120'000});
  }

  workload::WorkloadSpec spec;
  spec.seed = seed;
  spec.num_objects = 8;
  spec.update_fraction = 0.5;
  spec.clients_per_site = 2;
  spec.think_time_us = 4'000;
  spec.read_gap_us = 2'000;
  spec.query_epsilon = 2;
  spec.duration_us = 250'000;
  if (method == Method::kRituMulti || method == Method::kRituSingle) {
    spec.update_kind = workload::WorkloadSpec::UpdateKind::kTimestampedWrite;
  }
  workload::WorkloadRunner runner(&system, spec);
  runner.Run();

  if (inject_faults) {
    system.network().SetPartition({{0, 1}, {2}});
    system.RunFor(50'000);
    system.network().HealPartition();
  }
  system.RunUntilQuiescent();

  const obs::HopTracer* hops = system.hop_tracer();
  EXPECT_NE(hops, nullptr);
  HopFingerprint fp;
  fp.digest = hops->Digest();
  fp.completed = hops->completed_total();
  fp.dropped_ets = hops->dropped_ets();
  fp.dropped_hops = hops->dropped_hops();
  EXPECT_GT(fp.completed, 0) << "workload should complete traced ETs";
  return fp;
}

TEST(HopTraceTest, DisabledByDefault) {
  ReplicatedSystem system(Config(Method::kOrdup));
  EXPECT_EQ(system.hop_tracer(), nullptr);
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.TracesJson(), "[]");
}

TEST(HopTraceTest, DigestDeterministicAcrossRuns) {
  for (Method method : {Method::kOrdup, Method::kCommu, Method::kRituMulti}) {
    const HopFingerprint a = RunTraced(method, 91, /*inject_faults=*/false);
    const HopFingerprint b = RunTraced(method, 91, /*inject_faults=*/false);
    EXPECT_EQ(a, b) << "method " << static_cast<int>(method);
    const HopFingerprint other = RunTraced(method, 92, /*inject_faults=*/false);
    EXPECT_NE(a.digest, other.digest)
        << "different seeds should trace different executions";
  }
}

TEST(HopTraceTest, DigestDeterministicUnderCrashAndPartition) {
  const HopFingerprint a = RunTraced(Method::kCommu, 77, /*inject_faults=*/true);
  const HopFingerprint b = RunTraced(Method::kCommu, 77, /*inject_faults=*/true);
  EXPECT_EQ(a, b);
}

TEST(HopTraceTest, SegmentsTileTheTracedWindows) {
  SystemConfig config = Config(Method::kOrdup, 3, 11);
  config.record_hops = true;
  config.network.jitter_us = 3'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 12; ++i) {
    MustSubmit(system, i % 3, {Operation::Increment(i % 4, 1)});
    system.RunFor(3'000);
  }
  system.RunUntilQuiescent();

  const obs::HopTracer* hops = system.hop_tracer();
  ASSERT_NE(hops, nullptr);
  ASSERT_FALSE(hops->completed().empty());
  int checked = 0;
  for (const obs::EtTrace& trace : hops->completed()) {
    if (trace.aborted || trace.commit_time < 0 || trace.stable_time < 0) {
      continue;
    }
    const analysis::Waterfall w = analysis::BuildWaterfall(trace, CoreTypes());
    ASSERT_EQ(w.segments.size(), analysis::SegmentNames().size());
    // Pre-commit segments (0..2) tile submit→commit; post-commit segments
    // (3..8) tile commit→stable. This is the ">= 95% of the lag is
    // attributed" acceptance bar, met exactly by construction.
    int64_t pre = 0, post = 0;
    for (size_t i = 0; i < 3; ++i) pre += w.segments[i].Duration();
    for (size_t i = 3; i < w.segments.size(); ++i) {
      post += w.segments[i].Duration();
    }
    EXPECT_EQ(pre, w.commit_time - w.submit_time) << "et " << trace.et;
    EXPECT_EQ(post, w.stable_time - w.commit_time) << "et " << trace.et;
    EXPECT_EQ(post, w.CommitToStableUs());
    ++checked;
  }
  EXPECT_GT(checked, 0);

  // The live-endpoint payload for the same traces is valid non-empty JSON.
  const std::string json = system.TracesJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"segments\""), std::string::npos);
}

TEST(HopTraceTest, OrphanedSeqSpansAreClosed) {
  SystemConfig config = Config(Method::kOrdup, 3, 17);
  config.record_hops = true;
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval_us = 40'000;
  ReplicatedSystem system(config);
  // Updates flow from site 1 (not the sequencer home, so every order
  // request is a real round trip). It dies with amnesia 0.5ms after a
  // submit — the request is still in flight — so the grant comes back
  // orphaned. The abandoned early return used to skip SeqEnd, leaving the
  // round-trip span dangling and skewing the critical-path waterfall.
  for (int i = 0; i < 6; ++i) {
    MustSubmit(system, 1, {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  MustSubmit(system, 1, {Operation::Increment(0, 1)});
  system.failures().ScheduleCrash(
      sim::CrashSpec{/*site=*/1, system.simulator().Now() + 500,
                     system.simulator().Now() + 100'000, /*amnesia=*/true});
  system.RunFor(150'000);
  system.RunUntilQuiescent();

  const obs::HopTracer* hops = system.hop_tracer();
  ASSERT_NE(hops, nullptr);
  int seq_spans = 0;
  int orphaned_spans = 0;  // spans of ETs that never reached commit
  int unterminated = 0;
  auto scan = [&](const obs::EtTrace& trace) {
    for (const obs::HopRecord& hop : trace.hops) {
      if (hop.kind != obs::HopKind::kSeqRtt) continue;
      ++seq_spans;
      if (trace.commit_time < 0) ++orphaned_spans;
      if (hop.begin >= 0 && hop.end < 0) ++unterminated;
    }
  };
  for (const obs::EtTrace& trace : hops->completed()) scan(trace);
  for (const auto& [et, trace] : hops->open_traces()) scan(trace);
  EXPECT_GT(seq_spans, 0);
  EXPECT_GT(orphaned_spans, 0)
      << "the crash was supposed to orphan an in-flight order request";
  EXPECT_EQ(unterminated, 0)
      << "an abandoned sequencer round trip left its span dangling";
}

TEST(HopTraceTest, CompletedRingIsBounded) {
  SystemConfig config = Config(Method::kCommu, 2, 13);
  config.record_hops = true;
  config.trace_max_ets = 4;
  ReplicatedSystem system(config);
  for (int i = 0; i < 20; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
    system.RunFor(5'000);
  }
  system.RunUntilQuiescent();
  const obs::HopTracer* hops = system.hop_tracer();
  ASSERT_NE(hops, nullptr);
  EXPECT_LE(static_cast<int64_t>(hops->completed().size()), 4);
  EXPECT_EQ(hops->completed_total(), 20);
}

}  // namespace
}  // namespace esr::core
