// Loopback integration tests for the live metrics scrape endpoint: a raw
// POSIX-socket client drives obs::HttpExporter end-to-end (request-line
// parsing, routing, self-metrics, bounded buffering) and a full
// ReplicatedSystem session is scraped twice to assert monotone counters and
// fresh snapshots. The exporter thread is the codebase's first real
// concurrency, so this suite also runs under the tier-2 ASan+UBSan gate
// (scripts/run_tier2.sh).

#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metric_registry.h"
#include "test_util.h"

namespace esr::obs {
namespace {

using core::Method;
using store::Operation;
using test::Config;
using test::MustSubmit;
using test::ValidatePrometheusExposition;

/// Sends `request` to 127.0.0.1:`port` and returns the whole response (the
/// server closes the connection after every response). `chunk_gap_ms` > 0
/// splits the request in two writes to exercise request buffering.
std::string RawRequest(int port, const std::string& request,
                       int chunk_gap_ms = 0) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    ADD_FAILURE() << "connect to exporter failed";
    return "";
  }
  size_t sent = 0;
  const size_t first = chunk_gap_ms > 0 ? request.size() / 2 : request.size();
  while (sent < request.size()) {
    const size_t end = sent < first ? first : request.size();
    const ssize_t n = write(fd, request.data() + sent, end - sent);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
    if (sent == first && chunk_gap_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(chunk_gap_ms));
    }
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

/// Value of the (unlabeled) series `name` in an exposition; -1 if absent.
int64_t SeriesValue(const std::string& body, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  size_t at = body.rfind(needle);
  if (at == std::string::npos) {
    if (body.rfind(name + " ", 0) != 0) return -1;
    at = 0;
  } else {
    at += 1;
  }
  return std::stoll(body.substr(at + name.size() + 1));
}

TEST(MetricsSnapshotChannelTest, PublishAndLoad) {
  MetricsSnapshotChannel channel;
  EXPECT_EQ(channel.Load(), nullptr);
  EXPECT_EQ(channel.publishes(), 0);
  channel.Publish("a 1\n", 500);
  auto first = channel.Load();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->text, "a 1\n");
  EXPECT_EQ(first->sim_time_us, 500);
  EXPECT_EQ(first->sequence, 1);
  channel.Publish("a 2\n", 900);
  auto second = channel.Load();
  EXPECT_EQ(second->text, "a 2\n");
  EXPECT_EQ(second->sequence, 2);
  // The earlier snapshot stays valid for readers still holding it.
  EXPECT_EQ(first->text, "a 1\n");
  EXPECT_EQ(channel.publishes(), 2);
}

class HttpExporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    channel_ = std::make_shared<MetricsSnapshotChannel>();
    HttpExporterConfig config;
    config.port = 0;  // ephemeral
    exporter_ = std::make_unique<HttpExporter>(channel_, config);
    ASSERT_TRUE(exporter_->Start().ok());
    ASSERT_GT(exporter_->port(), 0);
  }

  std::shared_ptr<MetricsSnapshotChannel> channel_;
  std::unique_ptr<HttpExporter> exporter_;
};

TEST_F(HttpExporterTest, RoutesHealthzMetricsAnd404) {
  channel_->Publish(
      "# TYPE esr_demo_total counter\nesr_demo_total 7\n", 1'000);

  const std::string health = HttpGet(exporter_->port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(health), "ok\n");

  const std::string metrics = HttpGet(exporter_->port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = BodyOf(metrics);
  EXPECT_NE(body.find("esr_demo_total 7"), std::string::npos);
  EXPECT_EQ(SeriesValue(body, "esr_exporter_scrapes_total"), 1);
  EXPECT_EQ(SeriesValue(body, "esr_exporter_snapshot_sim_time_us"), 1'000);
  EXPECT_EQ(ValidatePrometheusExposition(body), "");

  EXPECT_NE(HttpGet(exporter_->port(), "/other").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(RawRequest(exporter_->port(), "POST /metrics HTTP/1.0\r\n\r\n")
                .find("404 Not Found"),
            std::string::npos);
}

TEST_F(HttpExporterTest, ScrapeTwiceMonotoneCountersAndFreshAge) {
  channel_->Publish("# TYPE esr_demo_total counter\nesr_demo_total 1\n", 10);
  const std::string body1 = BodyOf(HttpGet(exporter_->port(), "/metrics"));
  channel_->Publish("# TYPE esr_demo_total counter\nesr_demo_total 5\n", 20);
  const std::string body2 = BodyOf(HttpGet(exporter_->port(), "/metrics"));

  EXPECT_EQ(SeriesValue(body1, "esr_exporter_scrapes_total"), 1);
  EXPECT_EQ(SeriesValue(body2, "esr_exporter_scrapes_total"), 2);
  EXPECT_EQ(exporter_->scrapes_total(), 2);
  EXPECT_LT(SeriesValue(body1, "esr_demo_total"),
            SeriesValue(body2, "esr_demo_total"));
  // Both snapshots were published moments before the scrape: the age gauge
  // must be present, non-negative and well under a minute.
  for (const std::string* body : {&body1, &body2}) {
    const int64_t age = SeriesValue(*body, "esr_exporter_snapshot_age_us");
    EXPECT_GE(age, 0);
    EXPECT_LT(age, 60'000'000);
    EXPECT_EQ(ValidatePrometheusExposition(*body), "");
  }
}

TEST_F(HttpExporterTest, ServesSelfMetricsBeforeFirstPublish) {
  const std::string body = BodyOf(HttpGet(exporter_->port(), "/metrics"));
  EXPECT_EQ(SeriesValue(body, "esr_exporter_snapshot_age_us"), -1);
  EXPECT_EQ(SeriesValue(body, "esr_exporter_snapshot_sim_time_us"), -1);
  EXPECT_EQ(ValidatePrometheusExposition(body), "");
}

TEST_F(HttpExporterTest, SplitRequestIsBuffered) {
  const std::string response = RawRequest(
      exporter_->port(), "GET /healthz HTTP/1.0\r\n\r\n", /*chunk_gap_ms=*/30);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(HttpExporterTest, OversizedRequestIsRejected) {
  const std::string huge(8192, 'x');  // > max_request_bytes, no terminator
  EXPECT_NE(RawRequest(exporter_->port(), huge).find("400 Bad Request"),
            std::string::npos);
}

TEST_F(HttpExporterTest, SurvivesClientsThatCloseEarly) {
  // A client that connects and immediately closes must not wedge the loop.
  for (int i = 0; i < 3; ++i) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(exporter_->port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    close(fd);
  }
  EXPECT_NE(HttpGet(exporter_->port(), "/healthz").find("200 OK"),
            std::string::npos);
}

TEST(HttpExporterFacadeTest, EndToEndScrapeOfLiveSystem) {
  auto config = Config(Method::kCommu, 3, 21);
  config.metrics_port = 0;  // ephemeral loopback port
  config.metrics_publish_interval_us = 50'000;
  core::ReplicatedSystem system(config);
  ASSERT_NE(system.metrics_exporter(), nullptr);
  const int port = system.metrics_exporter()->port();
  ASSERT_GT(port, 0);

  // The constructor publishes an initial snapshot, so the very first scrape
  // already sees the full exposition.
  const std::string body1 = BodyOf(HttpGet(port, "/metrics"));
  EXPECT_NE(body1.find("esr_info"), std::string::npos);
  EXPECT_EQ(ValidatePrometheusExposition(body1), "");

  for (int i = 0; i < 4; ++i) {
    MustSubmit(system, static_cast<SiteId>(i % 3),
               {Operation::Increment(i, 1)});
    system.RunFor(60'000);  // crosses the publish cadence every iteration
  }
  const std::string body2 = BodyOf(HttpGet(port, "/metrics"));
  EXPECT_EQ(ValidatePrometheusExposition(body2), "");

  // Two consecutive scrapes of an advancing session: counters monotone,
  // snapshot fresh (published sim-time advanced, new sequence).
  // Absent (-1) in the construction-time snapshot: the counter is created
  // lazily on the first submit.
  EXPECT_LT(SeriesValue(body1, "esr_updates_submitted_total"), 4);
  EXPECT_EQ(SeriesValue(body2, "esr_updates_submitted_total"), 4);
  EXPECT_GT(SeriesValue(body2, "esr_exporter_snapshot_sim_time_us"),
            SeriesValue(body1, "esr_exporter_snapshot_sim_time_us"));
  EXPECT_GT(SeriesValue(body2, "esr_exporter_scrapes_total"),
            SeriesValue(body1, "esr_exporter_scrapes_total"));
  ASSERT_NE(system.metrics_channel(), nullptr);
  EXPECT_GE(system.metrics_channel()->publishes(), 2);

  // RunUntilQuiescent republishes so a scraper sees the drained state.
  system.RunUntilQuiescent();
  const std::string body3 = BodyOf(HttpGet(port, "/metrics"));
  EXPECT_NE(body3.find("esr_converged 1"), std::string::npos);
}

}  // namespace
}  // namespace esr::obs
