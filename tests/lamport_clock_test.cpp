#include "msg/lamport_clock.h"

#include <gtest/gtest.h>

namespace esr::msg {
namespace {

TEST(LamportClockTest, TickMonotonicallyIncreases) {
  LamportClock clock(3);
  LamportTimestamp a = clock.Tick();
  LamportTimestamp b = clock.Tick();
  EXPECT_LT(a, b);
  EXPECT_EQ(a.site, 3);
}

TEST(LamportClockTest, ObserveJumpsAheadOfRemote) {
  LamportClock clock(1);
  LamportTimestamp remote{100, 0};
  LamportTimestamp after = clock.Observe(remote);
  EXPECT_GT(after.counter, remote.counter);
  EXPECT_EQ(after.site, 1);
}

TEST(LamportClockTest, ObserveOfOldTimestampStillTicks) {
  LamportClock clock(1);
  clock.Tick();
  clock.Tick();
  LamportTimestamp now = clock.Now();
  LamportTimestamp after = clock.Observe(LamportTimestamp{1, 0});
  EXPECT_GT(after.counter, now.counter - 1);
  EXPECT_GT(after, now);
}

TEST(LamportClockTest, SiteBreaksTies) {
  LamportTimestamp a{5, 1}, b{5, 2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(LamportClockTest, NowDoesNotAdvance) {
  LamportClock clock(0);
  clock.Tick();
  LamportTimestamp n1 = clock.Now();
  LamportTimestamp n2 = clock.Now();
  EXPECT_EQ(n1, n2);
}

TEST(LamportClockTest, CausalOrderAcrossTwoClocks) {
  LamportClock a(0), b(1);
  LamportTimestamp send = a.Tick();
  LamportTimestamp receive = b.Observe(send);
  LamportTimestamp later = b.Tick();
  EXPECT_LT(send, receive);
  EXPECT_LT(receive, later);
}

}  // namespace
}  // namespace esr::msg
