#include "esr/lock_counters.h"

#include <gtest/gtest.h>

#include "store/operation.h"

namespace esr::core {
namespace {

/// Count-only weighted entries (weight 0), the COMPE usage.
std::vector<WeightedObject> Objs(std::vector<ObjectId> ids) {
  std::vector<WeightedObject> out;
  for (ObjectId id : ids) out.push_back(WeightedObject{id, 0});
  return out;
}

TEST(LockCounterTableTest, IncrementDecrementBalance) {
  LockCounterTable t;
  t.Increment(Objs({0, 1}));
  t.Increment(Objs({0}));
  EXPECT_EQ(t.Count(0), 2);
  EXPECT_EQ(t.Count(1), 1);
  t.Decrement(Objs({0, 1}));
  EXPECT_EQ(t.Count(0), 1);
  EXPECT_EQ(t.Count(1), 0);
  t.Decrement(Objs({0}));
  EXPECT_EQ(t.Count(0), 0);
}

TEST(LockCounterTableTest, UntouchedObjectIsZero) {
  LockCounterTable t;
  EXPECT_EQ(t.Count(99), 0);
}

TEST(LockCounterTableTest, ChargeReflectsCurrentCount) {
  LockCounterTable t;
  QueryState q;
  t.Increment(Objs({0}));
  t.Increment(Objs({0}));
  EXPECT_EQ(t.Charge(q, 0), 2);
  t.CommitCharge(q, 0);
  EXPECT_EQ(t.Charge(q, 0), 0) << "same in-flight updates charge once";
}

TEST(LockCounterTableTest, NewArrivalsChargeTheDifference) {
  LockCounterTable t;
  QueryState q;
  t.Increment(Objs({0}));
  t.CommitCharge(q, 0);  // charged 1
  t.Increment(Objs({0}));
  EXPECT_EQ(t.Charge(q, 0), 1) << "only the newly arrived update";
}

TEST(LockCounterTableTest, DepartedThenArrivedStillCharged) {
  LockCounterTable t;
  QueryState q;
  t.Increment(Objs({0}));        // ET A
  t.CommitCharge(q, 0);    // query charged for A
  t.Decrement(Objs({0}));        // A stable
  t.Increment(Objs({0}));        // ET B arrives
  EXPECT_EQ(t.Charge(q, 0), 1) << "B is new, must be charged";
}

TEST(LockCounterTableTest, ChargeCappedByCurrentCount) {
  LockCounterTable t;
  QueryState q;
  t.Increment(Objs({0}));
  t.Decrement(Objs({0}));
  t.Increment(Objs({0}));
  t.Decrement(Objs({0}));
  // Two arrivals total but none in progress: nothing to charge.
  EXPECT_EQ(t.Charge(q, 0), 0);
}

TEST(LockCounterTableTest, IndependentQueriesIndependentMarks) {
  LockCounterTable t;
  QueryState q1, q2;
  t.Increment(Objs({0}));
  t.CommitCharge(q1, 0);
  EXPECT_EQ(t.Charge(q2, 0), 1) << "q2 has not been charged yet";
}

TEST(LockCounterTableTest, ZeroCountObjectChargesNothing) {
  LockCounterTable t;
  QueryState q;
  EXPECT_EQ(t.Charge(q, 5), 0);
  t.CommitCharge(q, 5);  // no-op
  EXPECT_EQ(t.Charge(q, 5), 0);
}


TEST(LockCounterTableTest, WeightsTrackMagnitude) {
  LockCounterTable t;
  t.Increment({WeightedObject{0, 10}, WeightedObject{1, 3}});
  t.Increment({WeightedObject{0, 7}});
  EXPECT_EQ(t.Weight(0), 17);
  EXPECT_EQ(t.Weight(1), 3);
  t.Decrement({WeightedObject{0, 10}, WeightedObject{1, 3}});
  EXPECT_EQ(t.Weight(0), 7);
  EXPECT_EQ(t.Weight(1), 0);
}

TEST(LockCounterTableTest, WeightChargeAndCommit) {
  LockCounterTable t;
  QueryState q;
  t.Increment({WeightedObject{0, 10}});
  EXPECT_EQ(t.WeightCharge(q, 0), 10);
  t.CommitCharge(q, 0);
  EXPECT_EQ(t.WeightCharge(q, 0), 0) << "same in-flight change charges once";
  t.Increment({WeightedObject{0, 5}});
  EXPECT_EQ(t.WeightCharge(q, 0), 5) << "only the new arrival's magnitude";
}

TEST(LockCounterTableTest, WeightChargeCappedByCurrentWeight) {
  LockCounterTable t;
  QueryState q;
  t.Increment({WeightedObject{0, 10}});
  t.Decrement({WeightedObject{0, 10}});
  EXPECT_EQ(t.WeightCharge(q, 0), 0);
}

TEST(WeighOperationsTest, SumsIncrementMagnitudesPerObject) {
  using store::Operation;
  auto weighted = WeighOperations({Operation::Increment(0, 5),
                                   Operation::Increment(0, -3),
                                   Operation::Increment(1, 2),
                                   Operation::Read(2)});
  ASSERT_EQ(weighted.size(), 2u);
  EXPECT_EQ(weighted[0].object, 0);
  EXPECT_EQ(weighted[0].weight, 8) << "|5| + |-3|";
  EXPECT_EQ(weighted[1].object, 1);
  EXPECT_EQ(weighted[1].weight, 2);
}

TEST(WeighOperationsTest, NonIncrementsWeighZero) {
  using store::Operation;
  auto weighted = WeighOperations(
      {Operation::Multiply(0, 4),
       Operation::TimestampedWrite(1, Value(int64_t{9}), {1, 0})});
  ASSERT_EQ(weighted.size(), 2u);
  EXPECT_EQ(weighted[0].weight, 0);
  EXPECT_EQ(weighted[1].weight, 0);
}

}  // namespace
}  // namespace esr::core
