#include "cc/lock_manager.h"

#include <gtest/gtest.h>

namespace esr::cc {
namespace {

using store::OpKind;

TEST(LockCompatibilityTest, Strict2plMatrix) {
  const auto t = CompatibilityTable::kStrict2PL;
  EXPECT_TRUE(LockCompatible(t, LockMode::kSharedStrict, OpKind::kRead,
                             LockMode::kSharedStrict, OpKind::kRead));
  EXPECT_FALSE(LockCompatible(t, LockMode::kSharedStrict, OpKind::kRead,
                              LockMode::kExclusiveStrict, OpKind::kWrite));
  EXPECT_FALSE(LockCompatible(t, LockMode::kExclusiveStrict, OpKind::kWrite,
                              LockMode::kSharedStrict, OpKind::kRead));
  EXPECT_FALSE(LockCompatible(t, LockMode::kExclusiveStrict, OpKind::kWrite,
                              LockMode::kExclusiveStrict, OpKind::kWrite));
}

// Paper Table 2: rows/columns {R_U, W_U, R_Q}; R_U/R_U OK, everything with
// W_U conflicts, R_Q compatible with all.
TEST(LockCompatibilityTest, PaperTable2Ordup) {
  const auto t = CompatibilityTable::kOrdupEt;
  const auto RU = LockMode::kReadUpdate;
  const auto WU = LockMode::kWriteUpdate;
  const auto RQ = LockMode::kReadQuery;
  const auto r = OpKind::kRead;
  const auto w = OpKind::kWrite;

  EXPECT_TRUE(LockCompatible(t, RU, r, RU, r));    // RU/RU: OK
  EXPECT_FALSE(LockCompatible(t, RU, r, WU, w));   // RU/WU: conflict
  EXPECT_FALSE(LockCompatible(t, WU, w, RU, r));   // WU/RU: conflict
  EXPECT_FALSE(LockCompatible(t, WU, w, WU, w));   // WU/WU: conflict
  EXPECT_TRUE(LockCompatible(t, RU, r, RQ, r));    // RU/RQ: OK
  EXPECT_TRUE(LockCompatible(t, WU, w, RQ, r));    // WU/RQ: OK
  EXPECT_TRUE(LockCompatible(t, RQ, r, RU, r));    // RQ/RU: OK
  EXPECT_TRUE(LockCompatible(t, RQ, r, WU, w));    // RQ/WU: OK
  EXPECT_TRUE(LockCompatible(t, RQ, r, RQ, r));    // RQ/RQ: OK
}

// Paper Table 3: like Table 2 but W_U cells are "Comm" — compatible iff the
// operations commute.
TEST(LockCompatibilityTest, PaperTable3Commu) {
  const auto t = CompatibilityTable::kCommuEt;
  const auto RU = LockMode::kReadUpdate;
  const auto WU = LockMode::kWriteUpdate;
  const auto RQ = LockMode::kReadQuery;
  const auto r = OpKind::kRead;
  const auto inc = OpKind::kIncrement;
  const auto mul = OpKind::kMultiply;

  EXPECT_TRUE(LockCompatible(t, RU, r, RU, r));
  EXPECT_TRUE(LockCompatible(t, WU, inc, WU, inc)) << "commuting writes";
  EXPECT_FALSE(LockCompatible(t, WU, inc, WU, mul)) << "non-commuting writes";
  EXPECT_FALSE(LockCompatible(t, WU, OpKind::kWrite, WU, OpKind::kWrite));
  // R_U within an update ET carries a real dependency: no commutativity
  // with writes in our operation algebra ("few examples of commutativity
  // between W_U and R_U").
  EXPECT_FALSE(LockCompatible(t, WU, inc, RU, r));
  EXPECT_FALSE(LockCompatible(t, RU, r, WU, inc));
  // R_Q row and column all OK.
  EXPECT_TRUE(LockCompatible(t, WU, inc, RQ, r));
  EXPECT_TRUE(LockCompatible(t, RQ, r, WU, mul));
}

TEST(LockLevelCommutesTest, KindMatrix) {
  EXPECT_TRUE(LockLevelCommutes(OpKind::kIncrement, OpKind::kIncrement));
  EXPECT_TRUE(LockLevelCommutes(OpKind::kMultiply, OpKind::kMultiply));
  EXPECT_TRUE(LockLevelCommutes(OpKind::kTimestampedWrite,
                                OpKind::kTimestampedWrite));
  EXPECT_FALSE(LockLevelCommutes(OpKind::kIncrement, OpKind::kMultiply));
  EXPECT_FALSE(LockLevelCommutes(OpKind::kWrite, OpKind::kWrite));
  EXPECT_FALSE(LockLevelCommutes(OpKind::kAppend, OpKind::kAppend));
  EXPECT_FALSE(LockLevelCommutes(OpKind::kRead, OpKind::kIncrement));
}

TEST(LockManagerTest, GrantAndReleaseBasic) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  EXPECT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  EXPECT_EQ(lm.HeldCount(1), 1);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.HeldCount(1), 0);
}

TEST(LockManagerTest, TryLockFailsWithoutQueueing) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  Status s =
      lm.Acquire(2, 0, LockMode::kSharedStrict, OpKind::kRead, nullptr);
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(lm.WaiterCount(), 0);
}

TEST(LockManagerTest, WaiterGrantedOnRelease) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  bool granted = false;
  Status s = lm.Acquire(2, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                        [&]() { granted = true; });
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(lm.WaiterCount(), 1);
  lm.ReleaseAll(1);
  EXPECT_TRUE(granted);
  EXPECT_EQ(lm.HeldCount(2), 1);
}

TEST(LockManagerTest, FifoFairnessWriterNotStarved) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(
      lm.Acquire(1, 0, LockMode::kSharedStrict, OpKind::kRead, nullptr).ok());
  bool writer_granted = false;
  ASSERT_TRUE(lm.Acquire(2, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         [&]() { writer_granted = true; })
                  .IsUnavailable());
  // A later reader must queue behind the waiting writer, not jump it.
  bool reader_granted = false;
  Status s = lm.Acquire(3, 0, LockMode::kSharedStrict, OpKind::kRead,
                        [&]() { reader_granted = true; });
  EXPECT_TRUE(s.IsUnavailable());
  lm.ReleaseAll(1);
  EXPECT_TRUE(writer_granted);
  EXPECT_FALSE(reader_granted);
  lm.ReleaseAll(2);
  EXPECT_TRUE(reader_granted);
}

TEST(LockManagerTest, ReentrantAcquireGrants) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(
      lm.Acquire(1, 0, LockMode::kSharedStrict, OpKind::kRead, nullptr).ok());
  EXPECT_TRUE(
      lm.Acquire(1, 0, LockMode::kSharedStrict, OpKind::kRead, nullptr).ok());
  EXPECT_EQ(lm.HeldCount(1), 1);
}

TEST(LockManagerTest, UpgradeWhenSoleHolder) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(
      lm.Acquire(1, 0, LockMode::kSharedStrict, OpKind::kRead, nullptr).ok());
  EXPECT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  // Now exclusive: another reader must wait.
  EXPECT_TRUE(
      lm.Acquire(2, 0, LockMode::kSharedStrict, OpKind::kRead, nullptr)
          .IsUnavailable());
}

TEST(LockManagerTest, DeadlockDetectedAndRequesterAborted) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  ASSERT_TRUE(lm.Acquire(2, 1, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  // 1 waits for 2's object.
  ASSERT_TRUE(lm.Acquire(1, 1, LockMode::kExclusiveStrict, OpKind::kWrite,
                         []() {})
                  .IsUnavailable());
  // 2 requesting 1's object would close the cycle: aborted immediately.
  Status s = lm.Acquire(2, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                        []() {});
  EXPECT_TRUE(s.IsAborted());
}

TEST(LockManagerTest, VictimReleaseUnblocksWaiters) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  ASSERT_TRUE(lm.Acquire(2, 1, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  bool t1_granted = false;
  ASSERT_TRUE(lm.Acquire(1, 1, LockMode::kExclusiveStrict, OpKind::kWrite,
                         [&]() { t1_granted = true; })
                  .IsUnavailable());
  // Victim (txn 2) releases everything — txn 1 proceeds.
  lm.ReleaseAll(2);
  EXPECT_TRUE(t1_granted);
}

TEST(LockManagerTest, OrdupQueriesNeverBlock) {
  LockManager lm(CompatibilityTable::kOrdupEt);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kWriteUpdate, OpKind::kWrite,
                         nullptr)
                  .ok());
  // A query read is compatible even with a held write-update lock.
  EXPECT_TRUE(
      lm.Acquire(2, 0, LockMode::kReadQuery, OpKind::kRead, nullptr).ok());
}

TEST(LockManagerTest, CommuConcurrentIncrementWriters) {
  LockManager lm(CompatibilityTable::kCommuEt);
  EXPECT_TRUE(lm.Acquire(1, 0, LockMode::kWriteUpdate, OpKind::kIncrement,
                         nullptr)
                  .ok());
  EXPECT_TRUE(lm.Acquire(2, 0, LockMode::kWriteUpdate, OpKind::kIncrement,
                         nullptr)
                  .ok());
  // But a multiply conflicts with held increments.
  EXPECT_TRUE(lm.Acquire(3, 0, LockMode::kWriteUpdate, OpKind::kMultiply,
                         nullptr)
                  .IsUnavailable());
}

TEST(LockManagerTest, EveryGrantOfAHolderStaysVisible) {
  // Regression: a txn holding RQ that later acquires RU must still block
  // writers through the RU grant (the weaker RQ entry must not mask it).
  LockManager lm(CompatibilityTable::kOrdupEt);
  ASSERT_TRUE(
      lm.Acquire(1, 0, LockMode::kReadQuery, OpKind::kRead, nullptr).ok());
  ASSERT_TRUE(
      lm.Acquire(1, 0, LockMode::kReadUpdate, OpKind::kRead, nullptr).ok());
  EXPECT_TRUE(lm.Acquire(2, 0, LockMode::kWriteUpdate, OpKind::kWrite,
                         nullptr)
                  .IsUnavailable())
      << "the RU grant must block the writer";
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, 0, LockMode::kWriteUpdate, OpKind::kWrite,
                         nullptr)
                  .ok());
}

TEST(LockManagerTest, MixedWriteKindsOfOneHolderConstrainOthers) {
  // A txn holding WU(increment) and WU(multiply) forces others to commute
  // with BOTH — i.e., nobody else fits.
  LockManager lm(CompatibilityTable::kCommuEt);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kWriteUpdate, OpKind::kIncrement,
                         nullptr)
                  .ok());
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kWriteUpdate, OpKind::kMultiply,
                         nullptr)
                  .ok())
      << "self-conflicts never block";
  EXPECT_TRUE(lm.Acquire(2, 0, LockMode::kWriteUpdate, OpKind::kIncrement,
                         nullptr)
                  .IsUnavailable());
  EXPECT_TRUE(lm.Acquire(3, 0, LockMode::kWriteUpdate, OpKind::kMultiply,
                         nullptr)
                  .IsUnavailable());
  EXPECT_TRUE(
      lm.Acquire(4, 0, LockMode::kReadQuery, OpKind::kRead, nullptr).ok())
      << "query reads still pass";
}

TEST(LockManagerTest, WaitDieYoungerRequesterDies) {
  LockManager lm(CompatibilityTable::kStrict2PL, WaitPolicy::kWaitDie);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  // Younger (larger id) requester conflicting with an older holder: dies.
  Status s = lm.Acquire(2, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                        []() {});
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(lm.WaiterCount(), 0);
}

TEST(LockManagerTest, WaitDieOlderRequesterWaits) {
  LockManager lm(CompatibilityTable::kStrict2PL, WaitPolicy::kWaitDie);
  ASSERT_TRUE(lm.Acquire(5, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  bool granted = false;
  Status s = lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                        [&]() { granted = true; });
  EXPECT_TRUE(s.IsUnavailable()) << "older requester may wait";
  lm.ReleaseAll(5);
  EXPECT_TRUE(granted);
}

TEST(LockManagerTest, ReleaseCancelsQueuedRequests) {
  LockManager lm(CompatibilityTable::kStrict2PL);
  ASSERT_TRUE(lm.Acquire(1, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         nullptr)
                  .ok());
  bool granted = false;
  ASSERT_TRUE(lm.Acquire(2, 0, LockMode::kExclusiveStrict, OpKind::kWrite,
                         [&]() { granted = true; })
                  .IsUnavailable());
  lm.ReleaseAll(2);  // txn 2 gives up while waiting
  lm.ReleaseAll(1);
  EXPECT_FALSE(granted);
  EXPECT_EQ(lm.WaiterCount(), 0);
}

}  // namespace
}  // namespace esr::cc
