#include "msg/mailbox.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace esr::msg {
namespace {

TEST(MailboxTest, RoutesByMessageType) {
  sim::Simulator sim;
  sim::Network net(&sim, 2, sim::NetworkConfig{}, 1);
  Mailbox a(&net, 0), b(&net, 1);
  int got_one = 0, got_two = 0;
  b.RegisterHandler(50, [&](SiteId, const std::any&) { ++got_one; });
  b.RegisterHandler(51, [&](SiteId, const std::any&) { ++got_two; });
  a.Send(1, Envelope{50, {}});
  a.Send(1, Envelope{51, {}});
  a.Send(1, Envelope{51, {}});
  sim.Run();
  EXPECT_EQ(got_one, 1);
  EXPECT_EQ(got_two, 2);
}

TEST(MailboxTest, HandlerSeesSourceAndBody) {
  sim::Simulator sim;
  sim::Network net(&sim, 3, sim::NetworkConfig{}, 1);
  Mailbox a(&net, 0), b(&net, 1), c(&net, 2);
  SiteId from = -1;
  int body = 0;
  c.RegisterHandler(60, [&](SiteId source, const std::any& payload) {
    from = source;
    body = std::any_cast<int>(payload);
  });
  b.Send(2, Envelope{60, 42});
  sim.Run();
  EXPECT_EQ(from, 1);
  EXPECT_EQ(body, 42);
}

TEST(MailboxTest, UnhandledTypesAreCountedNotFatal) {
  sim::Simulator sim;
  sim::Network net(&sim, 2, sim::NetworkConfig{}, 1);
  Mailbox a(&net, 0), b(&net, 1);
  a.Send(1, Envelope{999, {}});
  sim.Run();
  EXPECT_EQ(net.counters().Get("mailbox.unhandled"), 1);
}

TEST(MailboxTest, ReplacingHandlerTakesEffect) {
  sim::Simulator sim;
  sim::Network net(&sim, 2, sim::NetworkConfig{}, 1);
  Mailbox a(&net, 0), b(&net, 1);
  int first = 0, second = 0;
  b.RegisterHandler(70, [&](SiteId, const std::any&) { ++first; });
  b.RegisterHandler(70, [&](SiteId, const std::any&) { ++second; });
  a.Send(1, Envelope{70, {}});
  sim.Run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(MailboxTest, LocalDispatchBypassesNetwork) {
  sim::Simulator sim;
  sim::Network net(&sim, 1, sim::NetworkConfig{}, 1);
  Mailbox a(&net, 0);
  bool got = false;
  a.RegisterHandler(80, [&](SiteId src, const std::any&) {
    got = true;
    EXPECT_EQ(src, 0);
  });
  a.Dispatch(0, Envelope{80, {}});
  EXPECT_TRUE(got);  // synchronous, no simulator events needed
  EXPECT_TRUE(sim.Quiescent());
}

}  // namespace
}  // namespace esr::msg
