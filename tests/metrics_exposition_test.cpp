// Exposition-format regression suite for MetricRegistry::PrometheusText()
// and Merge(): a golden-file rendering (HELP/label escaping, boundary
// placement, counter-vs-gauge formatting), the NaN-observation drop, the
// mismatched-bounds Merge fold, and the strict format validator run against
// a real ReplicatedSystem snapshot.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metric_registry.h"
#include "test_util.h"

namespace esr::obs {
namespace {

using core::Method;
using store::Operation;
using test::Config;
using test::MustSubmit;
using test::ValidatePrometheusExposition;

TEST(MetricsExpositionTest, GoldenRendering) {
  MetricRegistry registry;
  registry.Describe("esr_demo_total",
                    "Counts demo events\nsecond line with \\ backslash");
  registry.GetCounter("esr_demo_total", {{"site", "0"}}).Increment(3);
  registry.GetCounter("esr_demo_total", {{"site", "1"}}).Increment(4);
  registry.Describe("esr_temp", "Current temperature");
  registry.GetGauge("esr_temp").Set(0.5);
  registry.GetGauge("esr_level", {{"quote", "say \"hi\"\n"}, {"path", "a\\b"}})
      .Set(3);
  registry.Describe("esr_lat_us", "Latency");
  Histogram& h = registry.GetHistogram("esr_lat_us", {{"site", "0"}}, {10, 100});
  h.Observe(10);    // == bound: lands in le="10" (le is inclusive)
  h.Observe(10.5);  // le="100"
  h.Observe(250);   // +Inf overflow

  const std::string expected =
      "# HELP esr_demo_total Counts demo events\\nsecond line with \\\\ "
      "backslash\n"
      "# TYPE esr_demo_total counter\n"
      "esr_demo_total{site=\"0\"} 3\n"
      "esr_demo_total{site=\"1\"} 4\n"
      "# HELP esr_lat_us Latency\n"
      "# TYPE esr_lat_us histogram\n"
      "esr_lat_us_bucket{le=\"10\",site=\"0\"} 1\n"
      "esr_lat_us_bucket{le=\"100\",site=\"0\"} 2\n"
      "esr_lat_us_bucket{le=\"+Inf\",site=\"0\"} 3\n"
      "esr_lat_us_sum{site=\"0\"} 270.5\n"
      "esr_lat_us_count{site=\"0\"} 3\n"
      "# TYPE esr_level gauge\n"
      "esr_level{path=\"a\\\\b\",quote=\"say \\\"hi\\\"\\n\"} 3\n"
      "# HELP esr_metrics_invalid_observations_total Histogram samples "
      "dropped because the observed value was NaN or non-finite\n"
      "# TYPE esr_metrics_invalid_observations_total counter\n"
      "esr_metrics_invalid_observations_total 0\n"
      "# HELP esr_temp Current temperature\n"
      "# TYPE esr_temp gauge\n"
      "esr_temp 0.5\n";
  const std::string text = registry.PrometheusText();
  EXPECT_EQ(text, expected);
  EXPECT_EQ(ValidatePrometheusExposition(text), "");
}

TEST(MetricsExpositionTest, HelpTextIsEscaped) {
  // Regression: an embedded newline used to split the HELP line, corrupting
  // the stream (the continuation parsed as a nameless sample).
  MetricRegistry registry;
  registry.Describe("esr_x_total", "first\nsecond \\ third");
  registry.GetCounter("esr_x_total").Increment();
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP esr_x_total first\\nsecond \\\\ third\n"),
            std::string::npos);
  EXPECT_EQ(text.find("\nsecond"), std::string::npos);
  EXPECT_EQ(ValidatePrometheusExposition(text), "");
}

TEST(MetricsExpositionTest, NanAndInfObservationsAreDropped) {
  // Regression: a NaN sample used to land in an arbitrary bucket (NaN
  // comparison inside lower_bound) and poison sum_ for every later export.
  MetricRegistry registry;
  Histogram& h = registry.GetHistogram("esr_lat_us", {}, {10, 100});
  h.Observe(5);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(std::numeric_limits<double>::infinity());
  h.Observe(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 5);
  const std::vector<int64_t> expected_buckets = {1, 0, 0};
  EXPECT_EQ(h.bucket_counts(), expected_buckets);
  EXPECT_EQ(h.invalid_count(), 3);
  EXPECT_EQ(
      registry.GetCounter("esr_metrics_invalid_observations_total").value(),
      3);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("esr_metrics_invalid_observations_total 3"),
            std::string::npos);
  // The poisoned exports this bug caused ("esr_lat_us_sum nan") are gone.
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(ValidatePrometheusExposition(text), "");
}

TEST(MetricsExpositionTest, ObservationAtBucketBoundIsInclusive) {
  MetricRegistry registry;
  Histogram& h = registry.GetHistogram("esr_lat_us", {}, {10, 100});
  h.Observe(10);
  h.Observe(100);
  const std::vector<int64_t> expected = {1, 1, 0};
  EXPECT_EQ(h.bucket_counts(), expected);
}

TEST(MetricsExpositionTest, MergeMismatchedBoundsKeepsOverflowAndExactSums) {
  // Regression (two defects): the mismatched-bounds fold replayed
  // observations one-by-one at per-bucket upper bounds, with the +Inf
  // overflow bucket folded at the *global* mean sum()/count() — so (a) the
  // merged sum was inflated by the upper-bound approximation, and (b) when
  // small observations dominated, overflow mass migrated down into finite
  // destination buckets.
  MetricRegistry src_registry;
  Histogram& src =
      src_registry.GetHistogram("esr_lat_us", {}, {10, 1000});
  for (int i = 0; i < 8; ++i) src.Observe(1);  // finite mass: global mean low
  src.Observe(2000);                           // overflow observation
  ASSERT_DOUBLE_EQ(src.sum(), 2008);           // global mean ~223 < 1000

  MetricRegistry dst_registry;
  dst_registry.GetHistogram("esr_lat_us", {}, {50, 500});
  dst_registry.Merge(src_registry);

  Histogram& merged = dst_registry.GetHistogram("esr_lat_us");
  // Overflow stays overflow: the representative is clamped to at least the
  // source's largest finite bound (1000 > dest's 500), never the global
  // mean (223, which would land in le="500").
  const std::vector<int64_t> expected = {8, 0, 1};
  EXPECT_EQ(merged.bucket_counts(), expected);
  // count/sum transfer exactly (pre-fix: sum = 8*10 + 223.1 = 303.1).
  EXPECT_EQ(merged.count(), 9);
  EXPECT_DOUBLE_EQ(merged.sum(), 2008);
}

TEST(MetricsExpositionTest, MergeCarriesInvalidObservationCounts) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetHistogram("esr_lat_us", {}, {10});
  Histogram& hb = b.GetHistogram("esr_lat_us", {}, {10});
  hb.Observe(std::numeric_limits<double>::quiet_NaN());
  a.Merge(b);
  EXPECT_EQ(a.GetHistogram("esr_lat_us").invalid_count(), 1);
  // The registry-level counter merges through the normal counter path.
  EXPECT_EQ(a.GetCounter("esr_metrics_invalid_observations_total").value(), 1);
}

TEST(MetricsExpositionTest, ValidatorCatchesCorruptedStreams) {
  EXPECT_EQ(ValidatePrometheusExposition(""), "");
  EXPECT_NE(ValidatePrometheusExposition("esr_x 1\n"), "");  // no TYPE
  EXPECT_NE(ValidatePrometheusExposition("# TYPE esr_x counter\nesr_x one\n"),
            "");  // bad value
  EXPECT_NE(
      ValidatePrometheusExposition(
          "# TYPE esr_x counter\nesr_x 1\nesr_x 2\n"),
      "");  // duplicate series
  EXPECT_NE(ValidatePrometheusExposition(
                "# TYPE esr_h histogram\n"
                "esr_h_bucket{le=\"10\"} 5\n"
                "esr_h_bucket{le=\"+Inf\"} 3\n"  // non-cumulative
                "esr_h_sum 1\nesr_h_count 3\n"),
            "");
  EXPECT_NE(ValidatePrometheusExposition("# HELP esr_x broken\nmid-help\n"),
            "");  // what an unescaped HELP newline used to produce
}

TEST(MetricsExpositionTest, FullSystemSnapshotIsStrictlyWellFormed) {
  core::ReplicatedSystem system(Config(Method::kOrdup, 3, 11));
  for (int i = 0; i < 6; ++i) {
    MustSubmit(system, static_cast<SiteId>(i % 3),
               {Operation::Increment(i % 4, 1)});
    system.RunFor(2'000);
  }
  system.RunUntilQuiescent();
  const std::string snapshot = system.MetricsSnapshot();
  EXPECT_FALSE(snapshot.empty());
  EXPECT_EQ(ValidatePrometheusExposition(snapshot), "");
}

}  // namespace
}  // namespace esr::obs
