#include "store/mset_log.h"

#include <gtest/gtest.h>

namespace esr::store {
namespace {

TEST(MsetLogTest, ApplyAndLogAppliesOps) {
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Increment(0, 10)}).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 10);
  EXPECT_TRUE(log.Contains(1));
  EXPECT_EQ(log.size(), 1);
}

TEST(MsetLogTest, DuplicateMsetIdRejected) {
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Increment(0, 1)}).ok());
  EXPECT_EQ(log.ApplyAndLog(store, 1, {Operation::Increment(0, 1)}).code(),
            StatusCode::kAlreadyExists);
}

TEST(MsetLogTest, ReadOperationsRejected) {
  ObjectStore store;
  MsetLog log;
  EXPECT_FALSE(log.ApplyAndLog(store, 1, {Operation::Read(0)}).ok());
}

TEST(MsetLogTest, FastPathCompensatesTailIncrement) {
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Increment(0, 10)}).ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 2, {Operation::Increment(0, 5)}).ok());
  ASSERT_TRUE(log.Compensate(store, 1).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 5);
  EXPECT_FALSE(log.Contains(1));
  EXPECT_EQ(log.stats().fast_path, 1);
  EXPECT_EQ(log.stats().general_rollbacks, 0);
}

TEST(MsetLogTest, PaperExampleIncThenMulNeedsRollback) {
  // Inc(x,10) . Mul(x,2): compensating the Inc must NOT just apply Dec —
  // the log is rolled back and replayed (paper section 4.1).
  ObjectStore store;
  store.Restore(0, Value(int64_t{1}));
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Increment(0, 10)}).ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 2, {Operation::Multiply(0, 2)}).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 22);  // (1+10)*2
  ASSERT_TRUE(log.Compensate(store, 1).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 2);  // Mul(x,2) alone on initial 1
  EXPECT_EQ(log.stats().general_rollbacks, 1);
  EXPECT_EQ(log.stats().fast_path, 0);
  EXPECT_TRUE(log.Contains(2));
}

TEST(MsetLogTest, GeneralRollbackReplaysSuffix) {
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Write(0, Value(int64_t{5}))}).ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 2, {Operation::Write(0, Value(int64_t{7}))}).ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 3, {Operation::Increment(1, 4)}).ok());
  // Compensate the middle write: final state must look as if only 1 and 3
  // ran.
  ASSERT_TRUE(log.Compensate(store, 2).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 5);
  EXPECT_EQ(store.Read(1).AsInt(), 4);
  EXPECT_EQ(log.MsetIds(), (std::vector<int64_t>{1, 3}));
}

TEST(MsetLogTest, FastPathAdjustsLaterBeforeImages) {
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Increment(0, 10)}).ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 2, {Operation::Increment(0, 5)}).ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 3, {Operation::Increment(0, 3)}).ok());
  // Fast-path compensate #1, then general-compensate #2: the rollback must
  // not resurrect #1's effect through stale before-images.
  ASSERT_TRUE(log.Compensate(store, 1).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 8);
  ASSERT_TRUE(log.Compensate(store, 2).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 3);
}

TEST(MsetLogTest, CompensateUnknownMsetFails) {
  ObjectStore store;
  MsetLog log;
  EXPECT_TRUE(log.Compensate(store, 99).IsNotFound());
}

TEST(MsetLogTest, CompensateSoleRecord) {
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(log.ApplyAndLog(store, 1, {Operation::Write(0, Value(int64_t{3}))}).ok());
  ASSERT_TRUE(log.Compensate(store, 1).ok());
  EXPECT_EQ(store.Read(0), Value());
  EXPECT_EQ(log.size(), 0);
}

TEST(MsetLogTest, RituOverwriteRollbackRestoresOldValue) {
  // "In order to rollback RITU with overwrite we must also record the value
  // being overwritten on the log."
  ObjectStore store;
  MsetLog log;
  ASSERT_TRUE(store
                  .Apply(Operation::TimestampedWrite(0, Value(int64_t{1}),
                                                     {1, 0}))
                  .ok());
  ASSERT_TRUE(log.ApplyAndLog(store, 5,
                              {Operation::TimestampedWrite(
                                  0, Value(int64_t{9}), {2, 0})})
                  .ok());
  EXPECT_EQ(store.Read(0).AsInt(), 9);
  ASSERT_TRUE(log.Compensate(store, 5).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 1);
}

TEST(MsetLogTest, TruncateStableDropsPrefixOnly) {
  ObjectStore store;
  MsetLog log;
  for (int64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(log.ApplyAndLog(store, id, {Operation::Increment(0, 1)}).ok());
  }
  // 1 and 2 stable, 3 not, 4 stable: truncation stops at 3.
  const int64_t dropped = log.TruncateStable(
      [](int64_t id) { return id == 1 || id == 2 || id == 4; });
  EXPECT_EQ(dropped, 2);
  EXPECT_EQ(log.MsetIds(), (std::vector<int64_t>{3, 4}));
}

TEST(MsetLogTest, MultiObjectMsetBeforeImagesPerObject) {
  ObjectStore store;
  MsetLog log;
  store.Restore(0, Value(int64_t{100}));
  store.Restore(1, Value(int64_t{200}));
  ASSERT_TRUE(log.ApplyAndLog(store, 1,
                              {Operation::Write(0, Value(int64_t{-1})),
                               Operation::Write(1, Value(int64_t{-2}))})
                  .ok());
  ASSERT_TRUE(log.Compensate(store, 1).ok());
  EXPECT_EQ(store.Read(0).AsInt(), 100);
  EXPECT_EQ(store.Read(1).AsInt(), 200);
}

}  // namespace
}  // namespace esr::store
