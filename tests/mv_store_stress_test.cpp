#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "store/mv_store.h"

namespace esr::store {
namespace {

// Immediate predecessor timestamp (mirrors core::PredTimestamp without
// linking esr_core).
LamportTimestamp PredStress(LamportTimestamp ts) {
  if (ts.site > 0) return LamportTimestamp{ts.counter, ts.site - 1};
  return LamportTimestamp{ts.counter - 1, std::numeric_limits<SiteId>::max()};
}

// Concurrency stress for the partitioned store, meant to run under TSan
// (scripts/run_tier2.sh builds it into build-tsan): writer threads append
// monotone version chains, reader threads take latch-shared point reads, a
// GC thread prunes at a lagging watermark, and a scan thread digests and
// snapshots partition-at-a-time — all simultaneously. Assertions check
// what stays invariant under fuzziness; TSan checks the locking.
TEST(MvStoreStressTest, ConcurrentAppendReadGcSnapshot) {
  MvStore store(MvStoreOptions{.partitions = 8, .hot_cache_slots = 256});
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int64_t kObjects = 64;
  constexpr int64_t kWritesPerWriter = 4000;

  std::atomic<int64_t> watermark_counter{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  // Writers: thread w appends versions with site id w, so timestamps are
  // globally unique and each object's chain grows strictly newer.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, &watermark_counter, w] {
      for (int64_t c = 1; c <= kWritesPerWriter; ++c) {
        const ObjectId object = (c * (w + 1)) % kObjects;
        store.AppendVersion(object,
                            LamportTimestamp{c, static_cast<SiteId>(w)},
                            Value(c));
        // The stability watermark trails the slowest writer.
        int64_t floor = watermark_counter.load(std::memory_order_relaxed);
        while (c - 32 > floor &&
               !watermark_counter.compare_exchange_weak(
                   floor, c - 32, std::memory_order_relaxed)) {
        }
      }
    });
  }
  // Readers: latest and watermark reads; a returned version must carry a
  // timestamp consistent with the request.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, &watermark_counter, &done, r] {
      int64_t reads = 0;
      while (!done.load(std::memory_order_acquire)) {
        const ObjectId object = reads++ % kObjects;
        const LamportTimestamp at{
            watermark_counter.load(std::memory_order_relaxed), 0};
        auto pinned = store.ReadAtOrBefore(object, at);
        if (pinned.has_value()) {
          EXPECT_LE(pinned->timestamp, at);
        }
        auto latest = store.ReadLatest(object);
        if (pinned.has_value()) {
          ASSERT_TRUE(latest.has_value());
          EXPECT_GE(latest->timestamp, pinned->timestamp);
        }
        (void)r;
      }
    });
  }
  // GC: prunes strictly below the shared watermark; pinned reads at the
  // watermark stay servable (checked by the readers above).
  threads.emplace_back([&store, &watermark_counter, &done] {
    while (!done.load(std::memory_order_acquire)) {
      store.GcBelow(LamportTimestamp{
          watermark_counter.load(std::memory_order_relaxed), 0});
      std::this_thread::yield();
    }
  });
  // Scans: fuzzy digests and snapshots concurrent with everything else.
  threads.emplace_back([&store, &done] {
    while (!done.load(std::memory_order_acquire)) {
      (void)store.StateDigest();
      (void)store.LatestDigest();
      auto snap = store.SnapshotVersions();
      for (size_t i = 1; i < snap.size(); ++i) {
        // Sorted by (object, timestamp) even when taken mid-write.
        EXPECT_LE(std::get<0>(snap[i - 1]), std::get<0>(snap[i]));
      }
      (void)store.MaxTimestamp();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  done.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Quiescent invariants: a final GC at the last watermark bounds every
  // chain to [watermark, newest] and keeps the watermark read servable.
  const LamportTimestamp floor{watermark_counter.load(), 0};
  store.GcBelow(floor);
  EXPECT_EQ(store.TotalVersionCount(), [&store] {
    int64_t total = 0;
    for (ObjectId id : store.ObjectIds()) total += store.VersionCount(id);
    return total;
  }());
  for (ObjectId id : store.ObjectIds()) {
    auto latest = store.ReadLatest(id);
    ASSERT_TRUE(latest.has_value());
    auto pinned = store.ReadAtOrBefore(id, floor);
    if (pinned.has_value()) {
      // Nothing older than the kept at-or-below version survived.
      EXPECT_FALSE(
          store.ReadAtOrBefore(id, PredStress(pinned->timestamp)).has_value());
    }
  }
}

// Two stores fed the same operations from different thread interleavings
// converge to the same digest: appends commute across objects and
// same-object appends are keyed by timestamp.
TEST(MvStoreStressTest, ConcurrentAppendsAreOrderInsensitive) {
  auto run = [](int nthreads) {
    MvStore store(MvStoreOptions{.partitions = 4});
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([&store, t, nthreads] {
        for (int64_t c = t; c < 2000; c += nthreads) {
          store.AppendVersion(c % 16, LamportTimestamp{c, 0}, Value(c));
        }
      });
    }
    for (auto& th : threads) th.join();
    return store.StateDigest();
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace esr::store
