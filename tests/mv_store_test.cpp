#include "store/mv_store.h"

#include <gtest/gtest.h>

#include "store/object_store.h"
#include "store/version_store.h"

namespace esr::store {
namespace {

LamportTimestamp Ts(int64_t counter, SiteId site = 0) {
  return LamportTimestamp{counter, site};
}

// --- Multi-version role parity with VersionStore ---------------------------

TEST(MvStoreTest, AppendAndReadLatest) {
  MvStore store;
  store.AppendVersion(1, Ts(5), Value(int64_t{50}));
  store.AppendVersion(1, Ts(3), Value(int64_t{30}));
  auto latest = store.ReadLatest(1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->timestamp, Ts(5));
  EXPECT_EQ(latest->value.AsInt(), 50);
  EXPECT_FALSE(store.ReadLatest(2).has_value());
}

TEST(MvStoreTest, ReadAtOrBeforeWalksTheChain) {
  MvStore store(MvStoreOptions{.partitions = 4});
  store.AppendVersion(7, Ts(2), Value(int64_t{2}));
  store.AppendVersion(7, Ts(4), Value(int64_t{4}));
  store.AppendVersion(7, Ts(9), Value(int64_t{9}));
  EXPECT_FALSE(store.ReadAtOrBefore(7, Ts(1)).has_value());
  EXPECT_EQ(store.ReadAtOrBefore(7, Ts(2))->value.AsInt(), 2);
  EXPECT_EQ(store.ReadAtOrBefore(7, Ts(5))->value.AsInt(), 4);
  EXPECT_EQ(store.ReadAtOrBefore(7, Ts(100))->value.AsInt(), 9);
}

TEST(MvStoreTest, DigestMatchesVersionStoreByteForByte) {
  // The sim binding pins RITU-MV determinism digests; the concurrent store
  // must reproduce VersionStore's digest exactly, at any partition count.
  VersionStore legacy;
  legacy.AppendVersion(3, Ts(1, 2), Value(int64_t{10}));
  legacy.AppendVersion(3, Ts(4, 0), Value(std::string("x")));
  legacy.AppendVersion(11, Ts(2, 1), Value(int64_t{-5}));
  for (int parts : {1, 2, 8, 64}) {
    MvStore store(MvStoreOptions{.partitions = parts});
    store.AppendVersion(3, Ts(1, 2), Value(int64_t{10}));
    store.AppendVersion(3, Ts(4, 0), Value(std::string("x")));
    store.AppendVersion(11, Ts(2, 1), Value(int64_t{-5}));
    EXPECT_EQ(store.StateDigest(), legacy.StateDigest()) << parts;
    EXPECT_EQ(store.ObjectIds(), legacy.ObjectIds()) << parts;
    EXPECT_EQ(store.SnapshotVersions(), legacy.SnapshotVersions()) << parts;
  }
}

TEST(MvStoreTest, DigestMatchesObjectStoreByteForByte) {
  ObjectStore legacy;
  ASSERT_TRUE(legacy.Apply(Operation::Increment(1, 23)).ok());
  ASSERT_TRUE(legacy.Apply(Operation::Append(12, "s")).ok());
  for (int parts : {1, 8}) {
    MvStore store(MvStoreOptions{.partitions = parts});
    ASSERT_TRUE(store.Apply(Operation::Increment(1, 23)).ok());
    ASSERT_TRUE(store.Apply(Operation::Append(12, "s")).ok());
    EXPECT_EQ(store.StateDigest(), legacy.StateDigest()) << parts;
    EXPECT_EQ(store.SnapshotEntries(), legacy.SnapshotEntries()) << parts;
  }
}

TEST(MvStoreTest, MaxTimestampRecomputedWhenMaxVersionRemoved) {
  MvStore store(MvStoreOptions{.partitions = 8});
  store.AppendVersion(1, Ts(1), Value(int64_t{1}));
  store.AppendVersion(2, Ts(5), Value(int64_t{5}));
  store.AppendVersion(3, Ts(9), Value(int64_t{9}));
  ASSERT_EQ(store.MaxTimestamp(), Ts(9));
  ASSERT_TRUE(store.RemoveVersion(3, Ts(9)).ok());
  EXPECT_EQ(store.MaxTimestamp(), Ts(5));
  ASSERT_TRUE(store.RemoveVersion(2, Ts(5)).ok());
  EXPECT_EQ(store.MaxTimestamp(), Ts(1));
  ASSERT_TRUE(store.RemoveVersion(1, Ts(1)).ok());
  EXPECT_EQ(store.MaxTimestamp(), kZeroTimestamp);
}

TEST(MvStoreTest, RemoveVersionNotFound) {
  MvStore store;
  EXPECT_FALSE(store.RemoveVersion(1, Ts(1)).ok());
  store.AppendVersion(1, Ts(1), Value(int64_t{1}));
  EXPECT_FALSE(store.RemoveVersion(1, Ts(2)).ok());
  EXPECT_TRUE(store.RemoveVersion(1, Ts(1)).ok());
  EXPECT_TRUE(store.ObjectIds().empty());
}

// --- Single-version role parity with ObjectStore ---------------------------

TEST(MvStoreTest, ThomasWriteRuleIgnoresStaleWrites) {
  MvStore store(MvStoreOptions{.partitions = 2});
  ASSERT_TRUE(
      store.Apply(Operation::TimestampedWrite(0, Value(int64_t{5}), Ts(10)))
          .ok());
  ASSERT_TRUE(
      store.Apply(Operation::TimestampedWrite(0, Value(int64_t{3}), Ts(5)))
          .ok());
  EXPECT_EQ(store.Read(0).AsInt(), 5);
  EXPECT_EQ(store.WriteTimestamp(0), Ts(10));
  ASSERT_TRUE(
      store.Apply(Operation::TimestampedWrite(0, Value(int64_t{7}), Ts(11, 1)))
          .ok());
  EXPECT_EQ(store.Read(0).AsInt(), 7);
}

TEST(MvStoreTest, ApplyRejectsReadAndMaterializesIgnoredWrites) {
  MvStore store;
  EXPECT_FALSE(store.Apply(Operation::Read(0)).ok());
  EXPECT_EQ(store.ObjectCount(), 0);
  // A Thomas-ignored stale write still materializes the entry, exactly as
  // ObjectStore::Apply does (entries_[op.object] before the check).
  ASSERT_TRUE(
      store.Apply(Operation::TimestampedWrite(1, Value(int64_t{9}), Ts(5)))
          .ok());
  ASSERT_TRUE(
      store.Apply(Operation::TimestampedWrite(2, Value(int64_t{1}), Ts(0)))
          .ok());
  EXPECT_EQ(store.ObjectCount(), 2);
}

TEST(MvStoreTest, RestoreEntryRoundTripsSnapshot) {
  MvStore a(MvStoreOptions{.partitions = 4});
  ASSERT_TRUE(a.Apply(Operation::Increment(3, 7)).ok());
  ASSERT_TRUE(
      a.Apply(Operation::TimestampedWrite(9, Value(int64_t{2}), Ts(4))).ok());
  MvStore b;
  for (const auto& [id, value, ts] : a.SnapshotEntries()) {
    b.RestoreEntry(id, value, ts);
  }
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
  EXPECT_EQ(b.WriteTimestamp(9), Ts(4));
}

// --- Version GC -------------------------------------------------------------

TEST(MvStoreTest, GcKeepsNewestVersionAtOrBelowWatermark) {
  MvStore store(MvStoreOptions{.partitions = 4});
  for (int64_t c = 1; c <= 10; ++c) {
    store.AppendVersion(1, Ts(c), Value(c));
  }
  // Watermark exactly on a version: that version survives; everything
  // strictly older goes.
  EXPECT_EQ(store.GcBelow(Ts(6)), 5);
  EXPECT_EQ(store.VersionCount(1), 5);
  ASSERT_TRUE(store.ReadAtOrBefore(1, Ts(6)).has_value());
  EXPECT_EQ(store.ReadAtOrBefore(1, Ts(6))->value.AsInt(), 6);
  EXPECT_FALSE(store.ReadAtOrBefore(1, Ts(5)).has_value());
  EXPECT_EQ(store.gc_floor(), Ts(6));
}

TEST(MvStoreTest, GcBetweenVersionsKeepsTheOneBelow) {
  MvStore store;
  store.AppendVersion(1, Ts(2), Value(int64_t{2}));
  store.AppendVersion(1, Ts(8), Value(int64_t{8}));
  // Watermark between versions: Ts(2) is the newest at-or-below version
  // and must survive so ReadAtOrBefore(watermark) still answers.
  EXPECT_EQ(store.GcBelow(Ts(5)), 0);
  EXPECT_EQ(store.ReadAtOrBefore(1, Ts(5))->value.AsInt(), 2);
}

TEST(MvStoreTest, GcNeverEmptiesAChain) {
  MvStore store;
  store.AppendVersion(1, Ts(1), Value(int64_t{1}));
  EXPECT_EQ(store.GcBelow(Ts(100)), 0);
  EXPECT_EQ(store.VersionCount(1), 1);
  ASSERT_TRUE(store.ReadLatest(1).has_value());
}

TEST(MvStoreTest, GcBoundsChainsUnderSustainedWrites) {
  MvStore store(MvStoreOptions{.partitions = 8});
  // Writer advances, GC follows at a lag: chains stay bounded by the lag,
  // not by the write count.
  constexpr int64_t kLag = 16;
  for (int64_t c = 1; c <= 1000; ++c) {
    store.AppendVersion(c % 5, Ts(c), Value(c));
    if (c > kLag) store.GcBelow(Ts(c - kLag));
  }
  EXPECT_LE(store.MaxChainLength(), kLag + 1);
  EXPECT_GT(store.gc_pruned_total(), 0);
  // Digest over latest versions is what convergence checks under GC.
  EXPECT_NE(store.LatestDigest(), 0u);
}

TEST(MvStoreTest, LatestDigestInvariantUnderGc) {
  MvStore pruned(MvStoreOptions{.partitions = 2});
  MvStore full(MvStoreOptions{.partitions = 16});
  for (int64_t c = 1; c <= 20; ++c) {
    pruned.AppendVersion(c % 3, Ts(c), Value(c));
    full.AppendVersion(c % 3, Ts(c), Value(c));
  }
  ASSERT_EQ(pruned.LatestDigest(), full.LatestDigest());
  pruned.GcBelow(Ts(15));
  EXPECT_NE(pruned.StateDigest(), full.StateDigest());
  EXPECT_EQ(pruned.LatestDigest(), full.LatestDigest());
}

TEST(MvStoreTest, SetGcFloorIsMonotone) {
  MvStore store;
  store.SetGcFloor(Ts(5));
  store.SetGcFloor(Ts(3));
  EXPECT_EQ(store.gc_floor(), Ts(5));
}

// --- Hot-key cache ----------------------------------------------------------

TEST(MvStoreTest, HotCacheHitsAfterAppend) {
  MvStore store(MvStoreOptions{.partitions = 2, .hot_cache_slots = 64});
  store.AppendVersion(1, Ts(1), Value(int64_t{1}));
  store.AppendVersion(1, Ts(2), Value(int64_t{2}));
  auto v = store.ReadLatest(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->timestamp, Ts(2));
  EXPECT_EQ(v->value.AsInt(), 2);
  EXPECT_GE(store.hot_hits(), 1);
}

TEST(MvStoreTest, HotCacheRefreshedOnRemove) {
  MvStore store(MvStoreOptions{.partitions = 1, .hot_cache_slots = 64});
  store.AppendVersion(1, Ts(1), Value(int64_t{1}));
  store.AppendVersion(1, Ts(2), Value(int64_t{2}));
  // COMPE-style compensation removes the newest version; the cached entry
  // must fall back to the survivor, never serve the removed version.
  ASSERT_TRUE(store.RemoveVersion(1, Ts(2)).ok());
  auto v = store.ReadLatest(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->timestamp, Ts(1));
  ASSERT_TRUE(store.RemoveVersion(1, Ts(1)).ok());
  EXPECT_FALSE(store.ReadLatest(1).has_value());
}

TEST(MvStoreTest, HotCacheServesWatermarkReads) {
  MvStore store(MvStoreOptions{.partitions = 1, .hot_cache_slots = 8});
  store.AppendVersion(1, Ts(3), Value(int64_t{3}));
  // Newest version <= watermark: answerable straight from the cache.
  const int64_t hits_before = store.hot_hits();
  auto v = store.ReadAtOrBefore(1, Ts(10));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->timestamp, Ts(3));
  EXPECT_GT(store.hot_hits(), hits_before);
  // Watermark below the cached version: falls through to the chain.
  EXPECT_FALSE(store.ReadAtOrBefore(1, Ts(2)).has_value());
}

// --- Clear ------------------------------------------------------------------

TEST(MvStoreTest, ClearDropsEverything) {
  MvStore store(MvStoreOptions{.partitions = 4, .hot_cache_slots = 16});
  store.AppendVersion(1, Ts(1), Value(int64_t{1}));
  ASSERT_TRUE(store.Apply(Operation::Increment(2, 5)).ok());
  store.GcBelow(Ts(1));
  store.Clear();
  EXPECT_TRUE(store.ObjectIds().empty());
  EXPECT_EQ(store.ObjectCount(), 0);
  EXPECT_EQ(store.TotalVersionCount(), 0);
  EXPECT_EQ(store.MaxTimestamp(), kZeroTimestamp);
  EXPECT_EQ(store.gc_floor(), kZeroTimestamp);
  EXPECT_FALSE(store.ReadLatest(1).has_value());
  EXPECT_EQ(store.Read(2), Value());
}

TEST(MvStoreTest, PartitionCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MvStore(MvStoreOptions{.partitions = 1}).partition_count(), 1);
  EXPECT_EQ(MvStore(MvStoreOptions{.partitions = 3}).partition_count(), 4);
  EXPECT_EQ(MvStore(MvStoreOptions{.partitions = 8}).partition_count(), 8);
  EXPECT_EQ(MvStore(MvStoreOptions{.partitions = -2}).partition_count(), 1);
}

}  // namespace
}  // namespace esr::store
