#include "sim/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace esr::sim {
namespace {

struct Received {
  SiteId from;
  std::string payload;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&sim_, 4, NetworkConfig{}, /*seed=*/1) {
    for (SiteId s = 0; s < 4; ++s) {
      network_.RegisterReceiver(s, [this, s](SiteId from,
                                             const std::any& payload) {
        inbox_[s].push_back(
            Received{from, std::any_cast<std::string>(payload)});
      });
    }
  }

  Simulator sim_;
  Network network_;
  std::vector<Received> inbox_[4];
};

TEST_F(NetworkTest, DeliversWithLatency) {
  network_.Send(0, 1, std::string("hello"));
  EXPECT_TRUE(inbox_[1].empty());
  sim_.Run();
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_EQ(inbox_[1][0].from, 0);
  EXPECT_EQ(inbox_[1][0].payload, "hello");
  EXPECT_GE(sim_.Now(), NetworkConfig{}.base_latency_us);
}

TEST_F(NetworkTest, SelfSendWorks) {
  network_.Send(2, 2, std::string("loop"));
  sim_.Run();
  ASSERT_EQ(inbox_[2].size(), 1u);
}

TEST_F(NetworkTest, LossDropsMessages) {
  NetworkConfig config;
  config.loss_probability = 1.0;
  Network lossy(&sim_, 2, config, 1);
  bool got = false;
  lossy.RegisterReceiver(1,
                         [&](SiteId, const std::any&) { got = true; });
  lossy.Send(0, 1, std::string("x"));
  sim_.Run();
  EXPECT_FALSE(got);
  EXPECT_EQ(lossy.counters().Get("net.dropped_loss"), 1);
}

TEST_F(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  network_.SetPartition({{0, 1}, {2, 3}});
  network_.Send(0, 2, std::string("cross"));
  network_.Send(0, 1, std::string("within"));
  sim_.Run();
  EXPECT_TRUE(inbox_[2].empty());
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_TRUE(network_.Partitioned(0, 3));
  EXPECT_FALSE(network_.Partitioned(0, 1));
}

TEST_F(NetworkTest, HealPartitionRestoresTraffic) {
  network_.SetPartition({{0}, {1, 2, 3}});
  network_.HealPartition();
  network_.Send(0, 3, std::string("after"));
  sim_.Run();
  EXPECT_EQ(inbox_[3].size(), 1u);
}

TEST_F(NetworkTest, UnlistedSitesFormImplicitGroup) {
  network_.SetPartition({{0, 1}});
  EXPECT_TRUE(network_.Partitioned(0, 2));
  EXPECT_FALSE(network_.Partitioned(2, 3));
}

TEST_F(NetworkTest, PartitionFormedInFlightDropsAtDelivery) {
  network_.Send(0, 1, std::string("inflight"));
  // Partition forms before the message lands.
  sim_.Schedule(1, [&]() { network_.SetPartition({{0}, {1, 2, 3}}); });
  sim_.Run();
  EXPECT_TRUE(inbox_[1].empty());
}

TEST_F(NetworkTest, DownReceiverLosesMessage) {
  network_.SetSiteDown(1);
  network_.Send(0, 1, std::string("gone"));
  sim_.Run();
  EXPECT_TRUE(inbox_[1].empty());
}

TEST_F(NetworkTest, DownSenderCannotSend) {
  network_.SetSiteDown(0);
  network_.Send(0, 1, std::string("gone"));
  sim_.Run();
  EXPECT_TRUE(inbox_[1].empty());
  EXPECT_EQ(network_.counters().Get("net.dropped_sender_down"), 1);
}

TEST_F(NetworkTest, CrashWhileInFlightDropsAtDelivery) {
  network_.Send(0, 1, std::string("inflight"));
  sim_.Schedule(1, [&]() { network_.SetSiteDown(1); });
  sim_.Run();
  EXPECT_TRUE(inbox_[1].empty());
  EXPECT_EQ(network_.counters().Get("net.dropped_receiver_down"), 1);
}

TEST_F(NetworkTest, SiteUpRestoresDelivery) {
  network_.SetSiteDown(1);
  network_.SetSiteUp(1);
  network_.Send(0, 1, std::string("back"));
  sim_.Run();
  EXPECT_EQ(inbox_[1].size(), 1u);
}

TEST_F(NetworkTest, PerLinkLatencyOverride) {
  NetworkConfig config;
  config.base_latency_us = 100;
  config.jitter_us = 0;
  Network net(&sim_, 2, config, 1);
  SimTime delivered_at = -1;
  net.RegisterReceiver(
      1, [&](SiteId, const std::any&) { delivered_at = sim_.Now(); });
  net.SetLinkLatency(0, 1, 5000);
  net.Send(0, 1, std::string("slow"));
  sim_.Run();
  EXPECT_EQ(delivered_at, 5000);
}

TEST_F(NetworkTest, BandwidthAddsTransmitDelay) {
  NetworkConfig config;
  config.base_latency_us = 0;
  config.jitter_us = 0;
  config.bandwidth_bytes_per_sec = 1'000'000;  // 1 MB/s
  Network net(&sim_, 2, config, 1);
  SimTime delivered_at = -1;
  net.RegisterReceiver(
      1, [&](SiteId, const std::any&) { delivered_at = sim_.Now(); });
  net.Send(0, 1, std::string("x"), /*size_bytes=*/1'000'000);
  sim_.Run();
  EXPECT_EQ(delivered_at, 1'000'000);  // one second
}

TEST_F(NetworkTest, JitterReordersMessages) {
  NetworkConfig config;
  config.base_latency_us = 100;
  config.jitter_us = 1000;
  Network net(&sim_, 2, config, /*seed=*/3);
  std::vector<int> order;
  net.RegisterReceiver(1, [&](SiteId, const std::any& p) {
    order.push_back(std::any_cast<int>(p));
  });
  for (int i = 0; i < 32; ++i) net.Send(0, 1, i);
  sim_.Run();
  ASSERT_EQ(order.size(), 32u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "with 1ms jitter some pair should reorder";
}

}  // namespace
}  // namespace esr::sim
