#include "esr/object_class_registry.h"

#include <gtest/gtest.h>

namespace esr::core {
namespace {

using store::Operation;
using store::OpKind;

TEST(ObjectClassRegistryTest, FirstUpdatePinsClass) {
  ObjectClassRegistry registry;
  EXPECT_TRUE(registry.Admit(Operation::Increment(0, 1)).ok());
  ASSERT_TRUE(registry.ClassOf(0).has_value());
  EXPECT_EQ(*registry.ClassOf(0), OpKind::kIncrement);
}

TEST(ObjectClassRegistryTest, SameClassKeepsPassing) {
  ObjectClassRegistry registry;
  ASSERT_TRUE(registry.Admit(Operation::Increment(0, 1)).ok());
  EXPECT_TRUE(registry.Admit(Operation::Increment(0, -5)).ok());
}

TEST(ObjectClassRegistryTest, CrossClassRejected) {
  ObjectClassRegistry registry;
  ASSERT_TRUE(registry.Admit(Operation::Increment(0, 1)).ok());
  EXPECT_EQ(registry.Admit(Operation::Multiply(0, 2)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ObjectClassRegistryTest, NonSelfCommutingKindRejected) {
  ObjectClassRegistry registry;
  EXPECT_EQ(registry.Admit(Operation::Write(0, Value(int64_t{1}))).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Admit(Operation::Append(0, "x")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(registry.ClassOf(0).has_value()) << "nothing registered";
}

TEST(ObjectClassRegistryTest, TimestampedWritesAreAdmissible) {
  ObjectClassRegistry registry;
  EXPECT_TRUE(registry
                  .Admit(Operation::TimestampedWrite(0, Value(int64_t{1}),
                                                     {1, 0}))
                  .ok());
}

TEST(ObjectClassRegistryTest, ReadsIgnored) {
  ObjectClassRegistry registry;
  EXPECT_TRUE(registry.Admit(Operation::Read(0)).ok());
  EXPECT_FALSE(registry.ClassOf(0).has_value());
}

TEST(ObjectClassRegistryTest, AdmitAllAtomicOnFailure) {
  ObjectClassRegistry registry;
  Status s = registry.AdmitAll({Operation::Increment(7, 1),
                                Operation::Append(8, "x")});
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(registry.ClassOf(7).has_value())
      << "no partial registration on failure";
}

TEST(ObjectClassRegistryTest, AdmitAllRegistersAllOnSuccess) {
  ObjectClassRegistry registry;
  ASSERT_TRUE(registry
                  .AdmitAll({Operation::Increment(1, 1),
                             Operation::Increment(2, 2)})
                  .ok());
  EXPECT_TRUE(registry.ClassOf(1).has_value());
  EXPECT_TRUE(registry.ClassOf(2).has_value());
}

TEST(ObjectClassRegistryTest, PerObjectIndependence) {
  ObjectClassRegistry registry;
  ASSERT_TRUE(registry.Admit(Operation::Increment(0, 1)).ok());
  EXPECT_TRUE(registry.Admit(Operation::Multiply(1, 2)).ok())
      << "a different object may carry a different class";
}

}  // namespace
}  // namespace esr::core
