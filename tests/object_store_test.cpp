#include "store/object_store.h"

#include <gtest/gtest.h>

namespace esr::store {
namespace {

TEST(ObjectStoreTest, FreshObjectsReadAsZero) {
  ObjectStore store;
  EXPECT_EQ(store.Read(42), Value());
  EXPECT_EQ(store.ObjectCount(), 0);
}

TEST(ObjectStoreTest, ApplyIncrementAndMultiply) {
  ObjectStore store;
  ASSERT_TRUE(store.Apply(Operation::Increment(1, 10)).ok());
  ASSERT_TRUE(store.Apply(Operation::Multiply(1, 3)).ok());
  EXPECT_EQ(store.Read(1).AsInt(), 30);
}

TEST(ObjectStoreTest, ApplyAllSkipsReads) {
  ObjectStore store;
  ASSERT_TRUE(store
                  .ApplyAll({Operation::Read(1), Operation::Increment(1, 5),
                             Operation::Read(1)})
                  .ok());
  EXPECT_EQ(store.Read(1).AsInt(), 5);
}

TEST(ObjectStoreTest, ApplyRejectsReadOperation) {
  ObjectStore store;
  EXPECT_FALSE(store.Apply(Operation::Read(0)).ok());
}

TEST(ObjectStoreTest, ThomasWriteRuleIgnoresStaleWrites) {
  ObjectStore store;
  ASSERT_TRUE(store
                  .Apply(Operation::TimestampedWrite(0, Value(int64_t{5}),
                                                     {10, 0}))
                  .ok());
  // A write with an older timestamp is silently ignored.
  ASSERT_TRUE(store
                  .Apply(Operation::TimestampedWrite(0, Value(int64_t{3}),
                                                     {5, 0}))
                  .ok());
  EXPECT_EQ(store.Read(0).AsInt(), 5);
  EXPECT_EQ(store.WriteTimestamp(0), (LamportTimestamp{10, 0}));
  // A newer write lands.
  ASSERT_TRUE(store
                  .Apply(Operation::TimestampedWrite(0, Value(int64_t{7}),
                                                     {11, 1}))
                  .ok());
  EXPECT_EQ(store.Read(0).AsInt(), 7);
}

TEST(ObjectStoreTest, TimestampedWritesConvergeRegardlessOfOrder) {
  std::vector<Operation> ops = {
      Operation::TimestampedWrite(0, Value(int64_t{1}), {1, 0}),
      Operation::TimestampedWrite(0, Value(int64_t{2}), {2, 1}),
      Operation::TimestampedWrite(0, Value(int64_t{3}), {3, 0}),
  };
  ObjectStore forward, reverse;
  ASSERT_TRUE(forward.ApplyAll(ops).ok());
  std::reverse(ops.begin(), ops.end());
  ASSERT_TRUE(reverse.ApplyAll(ops).ok());
  EXPECT_EQ(forward.Read(0), reverse.Read(0));
  EXPECT_EQ(forward.StateDigest(), reverse.StateDigest());
}

TEST(ObjectStoreTest, RestoreBypassesSemantics) {
  ObjectStore store;
  ASSERT_TRUE(store.Apply(Operation::Increment(9, 4)).ok());
  store.Restore(9, Value(int64_t{-1}));
  EXPECT_EQ(store.Read(9).AsInt(), -1);
}

TEST(ObjectStoreTest, DigestDiffersOnDifferentState) {
  ObjectStore a, b;
  ASSERT_TRUE(a.Apply(Operation::Increment(0, 1)).ok());
  ASSERT_TRUE(b.Apply(Operation::Increment(0, 2)).ok());
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(ObjectStoreTest, DigestSeparatesIdAndValueFields) {
  // (id=1, value=23) and (id=12, value=3) both render to the byte stream
  // "123" without a field separator — distinct states must not collide.
  ObjectStore a, b;
  ASSERT_TRUE(a.Apply(Operation::Write(1, Value(int64_t{23}))).ok());
  ASSERT_TRUE(b.Apply(Operation::Write(12, Value(int64_t{3}))).ok());
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(ObjectStoreTest, DigestEqualForEqualState) {
  ObjectStore a, b;
  ASSERT_TRUE(a.Apply(Operation::Increment(3, 7)).ok());
  ASSERT_TRUE(b.Apply(Operation::Increment(3, 3)).ok());
  ASSERT_TRUE(b.Apply(Operation::Increment(3, 4)).ok());
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(ObjectStoreTest, ObjectIdsSorted) {
  ObjectStore store;
  ASSERT_TRUE(store.Apply(Operation::Increment(9, 1)).ok());
  ASSERT_TRUE(store.Apply(Operation::Increment(2, 1)).ok());
  ASSERT_TRUE(store.Apply(Operation::Increment(5, 1)).ok());
  EXPECT_EQ(store.ObjectIds(), (std::vector<ObjectId>{2, 5, 9}));
}

TEST(ObjectStoreTest, ApplyAllStopsAtFirstFailure) {
  ObjectStore store;
  ASSERT_TRUE(store.Apply(Operation::Append(1, "s")).ok());
  Status s = store.ApplyAll(
      {Operation::Increment(0, 1), Operation::Increment(1, 1)});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(store.Read(0).AsInt(), 1) << "first op applied before failure";
}

}  // namespace
}  // namespace esr::store
