#include "obs/metric_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/trace_export.h"
#include "obs/et_tracer.h"
#include "test_util.h"

namespace esr::obs {
namespace {

using core::Method;
using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(MetricRegistryTest, CounterAccumulates) {
  MetricRegistry registry;
  registry.GetCounter("esr_test_total").Increment();
  registry.GetCounter("esr_test_total").Increment(4);
  EXPECT_EQ(registry.GetCounter("esr_test_total").value(), 5);
}

TEST(MetricRegistryTest, LabelOrderAddressesSameSeries) {
  MetricRegistry registry;
  registry.GetCounter("esr_test_total", {{"a", "1"}, {"b", "2"}}).Increment();
  registry.GetCounter("esr_test_total", {{"b", "2"}, {"a", "1"}}).Increment();
  EXPECT_EQ(
      registry.GetCounter("esr_test_total", {{"a", "1"}, {"b", "2"}}).value(),
      2);
  EXPECT_EQ(registry.SeriesCount(), 1);
}

TEST(MetricRegistryTest, HistogramBucketsAndSum) {
  MetricRegistry registry;
  Histogram& h = registry.GetHistogram("esr_lat_us", {}, {10, 100, 1000});
  h.Observe(5);
  h.Observe(50);
  h.Observe(50);
  h.Observe(5000);  // +Inf overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 5105);
  const std::vector<int64_t> expected = {1, 2, 0, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  // Exposition renders cumulative le buckets plus _sum/_count.
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("esr_lat_us_bucket{le=\"100\"} 3"), std::string::npos);
  EXPECT_NE(text.find("esr_lat_us_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(text.find("esr_lat_us_count 4"), std::string::npos);
}

TEST(MetricRegistryTest, DescribeBeforeGetKeepsInstrumentKind) {
  // Regression: Describe() creates the family entry before the first Get*
  // call decides the kind; the gauge must still render as a gauge.
  MetricRegistry registry;
  registry.Describe("esr_converged_test", "help text");
  registry.GetGauge("esr_converged_test").Set(1);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE esr_converged_test gauge"), std::string::npos);
  EXPECT_NE(text.find("esr_converged_test 1"), std::string::npos);
}

TEST(MetricRegistryTest, DescribedButUnpopulatedFamilyIsSilent) {
  MetricRegistry registry;
  registry.Describe("esr_never_used", "help");
  EXPECT_EQ(registry.PrometheusText(), "");
}

TEST(MetricRegistryTest, MergeAddsCountersAndBuckets) {
  MetricRegistry a;
  MetricRegistry b;
  a.GetCounter("esr_x_total", {{"site", "0"}}).Increment(2);
  b.GetCounter("esr_x_total", {{"site", "0"}}).Increment(3);
  b.GetCounter("esr_x_total", {{"site", "1"}}).Increment(7);
  a.GetGauge("esr_g").Set(1);
  b.GetGauge("esr_g").Set(9);
  a.GetHistogram("esr_h", {}, {10, 100}).Observe(5);
  b.GetHistogram("esr_h", {}, {10, 100}).Observe(50);
  a.Merge(b);
  EXPECT_EQ(a.GetCounter("esr_x_total", {{"site", "0"}}).value(), 5);
  EXPECT_EQ(a.GetCounter("esr_x_total", {{"site", "1"}}).value(), 7);
  EXPECT_DOUBLE_EQ(a.GetGauge("esr_g").value(), 9);  // last writer wins
  Histogram& merged = a.GetHistogram("esr_h");
  EXPECT_EQ(merged.count(), 2);
  EXPECT_DOUBLE_EQ(merged.sum(), 55);
}

TEST(EtTracerTest, LifecycleSpansAndDerivedGauges) {
  MetricRegistry registry;
  EtTracer tracer(&registry, /*num_sites=*/3);
  tracer.OnSubmit(1, /*origin=*/0, 100);
  tracer.OnLocalCommit(1, 0, 200);
  EXPECT_EQ(tracer.InFlightEts(), 1);
  tracer.OnEnqueue(1, 0, 200, /*fanout=*/2);
  EXPECT_EQ(tracer.QueueDepth(1), 1);
  EXPECT_EQ(tracer.QueueDepth(2), 1);
  EXPECT_EQ(tracer.QueueDepth(0), 0);  // nothing queued toward the origin
  tracer.OnApply(1, 1, 300);
  EXPECT_EQ(tracer.QueueDepth(1), 0);
  tracer.OnApply(1, 2, 350);
  tracer.OnStable(1, 0, 400);
  EXPECT_EQ(tracer.InFlightEts(), 0);
  EXPECT_EQ(tracer.StabilityLag(1), 200);  // 400 - commit at 200
  // Replica-side stability notices are terminal no-ops.
  tracer.OnStable(1, 1, 450);
  ASSERT_EQ(tracer.events().size(), 6u);
  EXPECT_EQ(tracer.events().back().phase, EtPhase::kStable);
  EXPECT_EQ(
      registry.GetCounter("esr_et_phase_total", {{"phase", "stable"}}).value(),
      1);
}

TEST(EtTracerTest, AbortBeforeCommitDoesNotLeakInFlight) {
  // COMPE can decide an abort before the sequencer callback delivers the
  // local commit; the in-flight gauge must settle back to zero.
  MetricRegistry registry;
  EtTracer tracer(&registry, 3);
  tracer.OnSubmit(7, 0, 10);
  tracer.OnAborted(7, 0, 20);
  tracer.OnLocalCommit(7, 0, 30);  // late ordering callback
  EXPECT_EQ(tracer.InFlightEts(), 0);
}

/// Runs a deterministic 3-site ORDUP workload and returns the metrics
/// snapshot and the span JSONL.
std::pair<std::string, std::string> SeededOrdupRun(uint64_t seed) {
  core::ReplicatedSystem system(Config(Method::kOrdup, 3, seed));
  for (int i = 0; i < 8; ++i) {
    MustSubmit(system, static_cast<SiteId>(i % 3),
               {Operation::Increment(i % 4, 1)});
    system.RunFor(2'000);
  }
  system.RunUntilQuiescent();
  RunQuery(system, 1, core::kUnboundedEpsilon, {0, 1});
  return {system.MetricsSnapshot(),
          analysis::ExportSpansJsonl(system.tracer())};
}

TEST(ObsIntegrationTest, SeededRunsProduceIdenticalSnapshotsAndSpans) {
  auto [metrics1, spans1] = SeededOrdupRun(42);
  auto [metrics2, spans2] = SeededOrdupRun(42);
  EXPECT_FALSE(metrics1.empty());
  EXPECT_FALSE(spans1.empty());
  EXPECT_EQ(metrics1, metrics2);
  EXPECT_EQ(spans1, spans2);
  // Sanity: the snapshot carries the core lifecycle counters.
  EXPECT_NE(metrics1.find("esr_et_phase_total{phase=\"local_commit\"} 8"),
            std::string::npos);
  EXPECT_NE(metrics1.find("esr_queries_completed_total"), std::string::npos);
}

TEST(ObsIntegrationTest, NetworkDelayShowsUpInLagAndQueueDepth) {
  auto config = Config(Method::kOrdup, 3, 7);
  config.network.base_latency_us = 50'000;
  core::ReplicatedSystem system(config);
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 3)});

  // While the MSet is crossing the (slow) network, some replica's queue
  // depth must be visibly nonzero.
  int64_t max_depth = 0;
  for (int step = 0; step < 1'000 && !system.simulator().Quiescent(); ++step) {
    system.RunFor(1'000);
    for (SiteId s = 0; s < 3; ++s) {
      max_depth = std::max(max_depth, system.tracer().QueueDepth(s));
    }
  }
  system.RunUntilQuiescent();
  EXPECT_GT(max_depth, 0);

  // Stability takes at least one network round trip, so the lag gauge and
  // histogram are nonzero.
  EXPECT_GE(system.tracer().StabilityLag(et), 50'000);
  const std::string snapshot = system.MetricsSnapshot();
  EXPECT_NE(snapshot.find("esr_stability_lag_us_count 1"), std::string::npos);
  // After the drain the backlog gauge reads zero again.
  EXPECT_NE(snapshot.find("esr_mset_queue_depth{site=\"1\"} 0"),
            std::string::npos);
  EXPECT_EQ(system.tracer().InFlightEts(), 0);
}

TEST(ObsIntegrationTest, RecordSpansOffKeepsGaugesButNoEvents) {
  auto config = Config(Method::kCommu, 3, 9);
  config.record_spans = false;
  core::ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.tracer().events().empty());
  EXPECT_EQ(
      system.metrics()
          .GetCounter("esr_et_phase_total", {{"phase", "local_commit"}})
          .value(),
      1);
}

}  // namespace
}  // namespace esr::obs
