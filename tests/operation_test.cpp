#include "store/operation.h"

#include <gtest/gtest.h>

namespace esr::store {
namespace {

TEST(OperationTest, FactoriesSetFields) {
  Operation r = Operation::Read(7);
  EXPECT_EQ(r.kind, OpKind::kRead);
  EXPECT_EQ(r.object, 7);
  EXPECT_FALSE(r.IsUpdate());

  Operation inc = Operation::Increment(1, 5);
  EXPECT_EQ(inc.operand, 5);
  EXPECT_TRUE(inc.IsUpdate());

  Operation w = Operation::Write(2, Value(int64_t{9}));
  EXPECT_TRUE(w.IsBlind());
  EXPECT_FALSE(w.IsReadIndependent()) << "plain writes are order-sensitive";

  Operation tsw = Operation::TimestampedWrite(3, Value(int64_t{1}),
                                              LamportTimestamp{4, 0});
  EXPECT_TRUE(tsw.IsBlind());
  EXPECT_TRUE(tsw.IsReadIndependent());
}

TEST(OperationTest, ApplySemantics) {
  Value v(int64_t{10});
  EXPECT_TRUE(Operation::Increment(0, 5).ApplyTo(v).ok());
  EXPECT_EQ(v.AsInt(), 15);
  EXPECT_TRUE(Operation::Multiply(0, 3).ApplyTo(v).ok());
  EXPECT_EQ(v.AsInt(), 45);
  EXPECT_TRUE(Operation::Write(0, Value(int64_t{2})).ApplyTo(v).ok());
  EXPECT_EQ(v.AsInt(), 2);
}

TEST(OperationTest, ApplyReadFails) {
  Value v;
  EXPECT_FALSE(Operation::Read(0).ApplyTo(v).ok());
}

TEST(OperationTest, ApplyTypeMismatchFails) {
  Value v(std::string("text"));
  EXPECT_EQ(Operation::Increment(0, 1).ApplyTo(v).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Operation::Multiply(0, 2).ApplyTo(v).code(),
            StatusCode::kFailedPrecondition);
}

TEST(OperationTest, AppendPromotesFreshObjectAndConcatenates) {
  Value v;  // default integer zero = uninitialized object
  EXPECT_TRUE(Operation::Append(0, "a").ApplyTo(v).ok());
  EXPECT_TRUE(Operation::Append(0, "b").ApplyTo(v).ok());
  EXPECT_EQ(v.AsString(), "ab");
  Value nonzero(int64_t{5});
  EXPECT_FALSE(Operation::Append(0, "x").ApplyTo(nonzero).ok());
}

TEST(OperationTest, CommutativityMatrix) {
  Operation inc1 = Operation::Increment(0, 1);
  Operation inc2 = Operation::Increment(0, 2);
  Operation mul = Operation::Multiply(0, 2);
  Operation w = Operation::Write(0, Value(int64_t{1}));
  Operation app = Operation::Append(0, "x");
  Operation tsw1 =
      Operation::TimestampedWrite(0, Value(int64_t{1}), {1, 0});
  Operation tsw2 =
      Operation::TimestampedWrite(0, Value(int64_t{2}), {2, 0});

  EXPECT_TRUE(inc1.CommutesWith(inc2));
  EXPECT_TRUE(mul.CommutesWith(mul));
  EXPECT_TRUE(tsw1.CommutesWith(tsw2));
  EXPECT_FALSE(inc1.CommutesWith(mul));
  EXPECT_FALSE(w.CommutesWith(w));
  EXPECT_FALSE(app.CommutesWith(app));
  EXPECT_FALSE(w.CommutesWith(inc1));
  EXPECT_FALSE(tsw1.CommutesWith(w));
}

TEST(OperationTest, DistinctObjectsAlwaysCommute) {
  Operation w0 = Operation::Write(0, Value(int64_t{1}));
  Operation w1 = Operation::Write(1, Value(int64_t{1}));
  EXPECT_TRUE(w0.CommutesWith(w1));
}

TEST(OperationTest, ReadsCommuteWithUpdatesForQueryPurposes) {
  // Query-ET reads interleave freely under ESR; the operation-level
  // relation reflects that (update-ET read conflicts are handled by the
  // lock table's R_U class instead).
  Operation r = Operation::Read(0);
  Operation w = Operation::Write(0, Value(int64_t{1}));
  EXPECT_TRUE(r.CommutesWith(w));
  EXPECT_TRUE(w.CommutesWith(r));
}

TEST(OperationTest, IncrementExactInverse) {
  Operation inc = Operation::Increment(4, 7);
  ASSERT_TRUE(inc.HasExactInverse());
  Operation dec = inc.Inverse();
  Value v(int64_t{100});
  ASSERT_TRUE(inc.ApplyTo(v).ok());
  ASSERT_TRUE(dec.ApplyTo(v).ok());
  EXPECT_EQ(v.AsInt(), 100);
}

TEST(OperationTest, NonIncrementsHaveNoExactInverse) {
  EXPECT_FALSE(Operation::Multiply(0, 2).HasExactInverse());
  EXPECT_FALSE(Operation::Write(0, Value()).HasExactInverse());
  EXPECT_FALSE(Operation::Append(0, "x").HasExactInverse());
}

TEST(OperationTest, MutuallyCommutativeSets) {
  std::vector<Operation> incs = {Operation::Increment(0, 1),
                                 Operation::Increment(1, 2)};
  std::vector<Operation> more_incs = {Operation::Increment(0, 3)};
  std::vector<Operation> muls = {Operation::Multiply(0, 2)};
  std::vector<Operation> incs_other_object = {Operation::Increment(9, 3)};
  EXPECT_TRUE(MutuallyCommutative(incs, more_incs));
  EXPECT_FALSE(MutuallyCommutative(incs, muls));
  EXPECT_TRUE(MutuallyCommutative(muls, incs_other_object))
      << "different objects commute";
}

TEST(OperationTest, SelfCommutative) {
  EXPECT_TRUE(SelfCommutative(
      {Operation::Increment(0, 1), Operation::Increment(0, 2)}));
  EXPECT_FALSE(SelfCommutative(
      {Operation::Increment(0, 1), Operation::Multiply(0, 2)}));
  EXPECT_TRUE(SelfCommutative({Operation::Write(0, Value(int64_t{1})),
                               Operation::Write(1, Value(int64_t{2}))}));
}

TEST(OperationTest, ToStringIsHumanReadable) {
  EXPECT_EQ(Operation::Increment(3, 10).ToString(), "increment(obj=3, 10)");
  EXPECT_NE(Operation::Write(1, Value(std::string("v"))).ToString().find(
                "write"),
            std::string::npos);
}

}  // namespace
}  // namespace esr::store
