#include "esr/ordup.h"

#include <gtest/gtest.h>

#include "analysis/query_checker.h"
#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(OrdupTest, SingleUpdatePropagatesToAllReplicas) {
  ReplicatedSystem system(Config(Method::kOrdup));
  bool committed = false;
  MustSubmit(system, 0, {Operation::Increment(1, 10)},
             [&](Status s) { committed = s.ok(); });
  system.RunUntilQuiescent();
  EXPECT_TRUE(committed);
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.SiteValue(s, 1).AsInt(), 10) << "site " << s;
  }
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, NonCommutativeUpdatesConvergeViaTotalOrder) {
  // Blind writes from different sites: without ordering, replicas would
  // disagree; ORDUP's total order makes them identical.
  auto config = Config(Method::kOrdup, 4, /*seed=*/7);
  config.network.jitter_us = 5'000;  // aggressive reordering
  ReplicatedSystem system(config);
  for (int i = 0; i < 12; ++i) {
    MustSubmit(system, i % 4,
               {Operation::Write(0, Value(int64_t{100 + i})),
                Operation::Append(1, "x")});
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(0, 1).AsString().size(), 12u);
}

TEST(OrdupTest, UpdateSubhistoryIsSerializable) {
  auto config = Config(Method::kOrdup, 3, 11);
  config.network.jitter_us = 3'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 20; ++i) {
    MustSubmit(system, i % 3,
               {Operation::Write(i % 4, Value(int64_t{i}))});
  }
  system.RunUntilQuiescent();
  auto result =
      analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(result.serializable) << result.violation;
  EXPECT_EQ(result.serial_order.size(), 20u);
}

TEST(OrdupTest, UnboundedQuerySeesLocalStateFreely) {
  ReplicatedSystem system(Config(Method::kOrdup));
  MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  int64_t inconsistency = -1;
  auto values = RunQuery(system, 1, kUnboundedEpsilon, {0}, &inconsistency);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 5);
  EXPECT_EQ(inconsistency, 0) << "no concurrent updates -> zero overlap";
}

TEST(OrdupTest, EpsilonZeroQueryIsStrictAndPausesApplier) {
  ReplicatedSystem system(Config(Method::kOrdup));
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();

  const EtId q = system.BeginQuery(1, /*epsilon=*/0);
  Result<Value> first = system.TryRead(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 1);

  // An update committed mid-query must NOT become visible at site 1 while
  // the strict query holds the pause.
  MustSubmit(system, 0, {Operation::Increment(0, 100)});
  system.RunFor(1'000'000);
  Result<Value> second = system.TryRead(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 1) << "strict query reads at its pin";
  const QueryState* state = system.query_state(q);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->inconsistency, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());

  // After the query ends the pause lifts and the site catches up.
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 101);
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, QueryChargedPerOverlappingConflictingUpdate) {
  ReplicatedSystem system(Config(Method::kOrdup));
  const EtId q = system.BeginQuery(1, /*epsilon=*/10);
  ASSERT_TRUE(system.TryRead(q, 0).ok());  // pin at watermark 0
  // Three conflicting updates land at site 1 while the query runs.
  for (int i = 0; i < 3; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
  }
  system.RunUntilQuiescent();
  Result<Value> second = system.TryRead(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 3);
  const QueryState* state = system.query_state(q);
  EXPECT_EQ(state->inconsistency, 3);
  // Re-reading without further updates must not double-charge.
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  EXPECT_EQ(system.query_state(q)->inconsistency, 3);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(OrdupTest, ExhaustedBudgetForcesStrictRestart) {
  ReplicatedSystem system(Config(Method::kOrdup));
  const EtId q = system.BeginQuery(1, /*epsilon=*/1);
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  for (int i = 0; i < 5; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
  }
  system.RunUntilQuiescent();
  // Five conflicting updates > budget 1: direct attempt is rejected...
  Result<Value> direct = system.TryRead(q, 0);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsInconsistencyLimit());
  // ...but the retrying Read() API restarts the query strictly and
  // succeeds.
  bool done = false;
  int64_t value = -1;
  system.Read(q, 0, [&](Result<Value> v) {
    ASSERT_TRUE(v.ok());
    value = v->AsInt();
    done = true;
  });
  system.RunUntilQuiescent();
  ASSERT_TRUE(done);
  EXPECT_EQ(value, 5);
  const QueryState* state = system.query_state(q);
  EXPECT_EQ(state->restarts, 1);
  EXPECT_TRUE(state->strict);
  EXPECT_EQ(state->inconsistency, 0) << "fresh accounting after restart";
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(OrdupTest, RestartWhilePausedDoesNotLeakApplierPause) {
  // Regression: ResetForRestart() used to clear holds_pause without going
  // through ResumeApplier(), so a query restarted while holding the pause
  // left pause_depth_ elevated and the site's TotalOrderBuffer frozen
  // forever. The facade's restart path plus the strict re-read must leave
  // the pause balanced.
  ReplicatedSystem system(Config(Method::kOrdup));
  ReplicaControlMethod* m = system.site_method(1);
  QueryState q;
  q.id = 999;
  q.site = 1;
  q.epsilon = 0;  // strict from the first read: acquires the pause
  ASSERT_TRUE(m->TryQueryRead(q, 0).ok());
  ASSERT_TRUE(q.holds_pause);
  // Restart the attempt's accounting (as on kInconsistencyLimit).
  q.ResetForRestart();
  // The strict retry must not stack a second pause on the same query...
  ASSERT_TRUE(m->TryQueryRead(q, 0).ok());
  // ...and ending the query must release the applier completely.
  m->OnQueryEnd(q);
  EXPECT_FALSE(q.holds_pause);
  MustSubmit(system, 0, {Operation::Increment(0, 7)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 7)
      << "applier must make progress after the restart";
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, OnQueryRestartReleasesPauseAndApplierProgresses) {
  // The facade's restart sequence: OnQueryRestart() hands the pause back,
  // ResetForRestart() wipes the attempt, and the applier runs again while
  // the query is between attempts.
  ReplicatedSystem system(Config(Method::kOrdup));
  ReplicaControlMethod* m = system.site_method(1);
  QueryState q;
  q.id = 998;
  q.site = 1;
  q.epsilon = 0;
  ASSERT_TRUE(m->TryQueryRead(q, 0).ok());
  ASSERT_TRUE(q.holds_pause);
  m->OnQueryRestart(q);
  EXPECT_FALSE(q.holds_pause);
  q.ResetForRestart();
  EXPECT_EQ(q.restarts, 1);
  EXPECT_TRUE(q.strict);
  MustSubmit(system, 0, {Operation::Increment(0, 9)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 9)
      << "no pause may survive the restart";
  // The fresh strict attempt re-pins and re-pauses at the new watermark.
  ASSERT_TRUE(m->TryQueryRead(q, 0).ok());
  EXPECT_TRUE(q.holds_pause);
  m->OnQueryEnd(q);
  EXPECT_FALSE(q.holds_pause);
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, EpsilonZeroQueriesArePrefixConsistent) {
  auto config = Config(Method::kOrdup, 3, 13);
  config.network.jitter_us = 2'000;
  ReplicatedSystem system(config);
  // Interleave updates and strict queries.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      MustSubmit(system, i % 3,
                 {Operation::Increment(i % 2, 1),
                  Operation::Increment(2 + (i % 2), 1)});
    }
    system.RunFor(1'500);
    RunQuery(system, round % 3, /*epsilon=*/0, {0, 1, 2, 3});
  }
  system.RunUntilQuiescent();
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  ASSERT_TRUE(sr.serializable) << sr.violation;
  auto reports = analysis::AnalyzeQueries(system.history(), sr.serial_order);
  ASSERT_EQ(reports.size(), 5u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.prefix_consistent)
        << "epsilon=0 ORDUP query " << r.query << " must be 1SR";
    EXPECT_EQ(r.charged, 0);
  }
}

TEST(OrdupTest, ChargedInconsistencyNeverExceedsEpsilon) {
  auto config = Config(Method::kOrdup, 3, 17);
  ReplicatedSystem system(config);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) {
      MustSubmit(system, i % 3, {Operation::Increment(0, 1)});
    }
    system.RunFor(800);
    int64_t inconsistency = -1;
    RunQuery(system, 1, /*epsilon=*/2, {0, 0, 0}, &inconsistency);
    EXPECT_LE(inconsistency, 2);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, SequencerRoundTripShowsUpInCommitLatency) {
  auto config = Config(Method::kOrdup, 3);
  config.network.base_latency_us = 50'000;
  config.network.jitter_us = 0;
  ReplicatedSystem system(config);
  SimTime committed_at = -1;
  // Submit from a non-sequencer site: commit needs the sequencer round
  // trip (2 x 50ms).
  MustSubmit(system, 1, {Operation::Increment(0, 1)},
             [&](Status) { committed_at = system.simulator().Now(); });
  system.RunUntilQuiescent();
  EXPECT_GE(committed_at, 100'000);
}

TEST(OrdupTest, SequencedQueryReadsAtItsGlobalPosition) {
  auto config = Config(Method::kOrdup);
  config.ordup_sequenced_queries = true;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();

  const EtId q = system.BeginQuery(1, /*epsilon=*/0);
  // The sequence number needs a round trip; the retrying Read drives it.
  bool done = false;
  int64_t value = -1;
  system.Read(q, 0, [&](Result<Value> v) {
    ASSERT_TRUE(v.ok());
    value = v->AsInt();
    done = true;
  });
  system.RunUntilQuiescent();
  ASSERT_TRUE(done);
  EXPECT_EQ(value, 5);
  // An update committed mid-query queues BEHIND the query's position at
  // its site: invisible until the query ends.
  MustSubmit(system, 0, {Operation::Increment(0, 100)});
  system.RunUntilQuiescent();
  Result<Value> second = system.TryRead(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 5) << "the gap holds the later update back";
  EXPECT_EQ(system.query_state(q)->inconsistency, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 105);
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, SequencedQueryDoesNotStallOtherSites) {
  auto config = Config(Method::kOrdup);
  config.ordup_sequenced_queries = true;
  ReplicatedSystem system(config);
  const EtId q = system.BeginQuery(1, 0);
  bool first_done = false;
  system.Read(q, 0, [&](Result<Value>) { first_done = true; });
  system.RunFor(200'000);
  ASSERT_TRUE(first_done);
  // While the query holds its position at site 1, an update still applies
  // promptly at sites 0 and 2 (they skipped the query's number).
  MustSubmit(system, 0, {Operation::Increment(0, 7)});
  system.RunFor(300'000);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 7);
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 7);
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 0) << "gap held at the query site";
  ASSERT_TRUE(system.EndQuery(q).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, SequencedQueriesArePrefixConsistentUnderChurn) {
  auto config = Config(Method::kOrdup, 3, 19);
  config.ordup_sequenced_queries = true;
  config.network.jitter_us = 2'000;
  ReplicatedSystem system(config);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3; ++i) {
      MustSubmit(system, i,
                 {Operation::Increment(0, 1), Operation::Increment(1, 1)});
    }
    system.RunFor(2'000);
    RunQuery(system, round % 3, /*epsilon=*/0, {0, 1});
  }
  system.RunUntilQuiescent();
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  ASSERT_TRUE(sr.serializable) << sr.violation;
  auto reports = analysis::AnalyzeQueries(system.history(), sr.serial_order);
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.prefix_consistent)
        << "sequenced query " << r.query << " must be SR";
    EXPECT_EQ(r.charged, 0) << "empty overlap by construction";
  }
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, AbandonedSequencedQueryReleasesItsPosition) {
  auto config = Config(Method::kOrdup);
  config.ordup_sequenced_queries = true;
  config.network.base_latency_us = 30'000;
  ReplicatedSystem system(config);
  // End the query before its sequence response can possibly arrive.
  const EtId q = system.BeginQuery(1, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
  // Updates must still flow: the abandoned position is released when the
  // response lands.
  MustSubmit(system, 0, {Operation::Increment(0, 3)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 3);
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTest, RejectsReadOperationsInUpdateEts) {
  ReplicatedSystem system(Config(Method::kOrdup));
  auto result = system.SubmitUpdate(0, {Operation::Read(0)});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace esr::core
