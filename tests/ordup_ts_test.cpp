#include "esr/ordup_ts.h"

#include <gtest/gtest.h>

#include "analysis/query_checker.h"
#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(OrdupTsTest, LocalCommitIsImmediateUnlikeCentralOrdup) {
  auto config = Config(Method::kOrdupTs);
  config.network.base_latency_us = 50'000;
  ReplicatedSystem system(config);
  SimTime committed_at = -1;
  MustSubmit(system, 1, {Operation::Increment(0, 1)},
             [&](Status) { committed_at = system.simulator().Now(); });
  EXPECT_EQ(committed_at, 0)
      << "no order-server round trip in the decentralized variant";
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTsTest, ReleaseWaitsForWatermarkFloor) {
  auto config = Config(Method::kOrdupTs);
  config.network.base_latency_us = 30'000;
  config.heartbeat_interval_us = 10'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Write(0, Value(int64_t{5}))});
  auto* method = static_cast<OrdupTsMethod*>(system.site_method(0));
  // Even the origin holds its own MSet until the other origins' clocks
  // pass its timestamp.
  EXPECT_EQ(method->ReleaseIndex(), 0);
  EXPECT_EQ(method->HeldCount(), 1);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 0);
  system.RunUntilQuiescent();
  EXPECT_EQ(method->ReleaseIndex(), 1);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 5);
}

TEST(OrdupTsTest, NonCommutativeUpdatesConvergeInTimestampOrder) {
  auto config = Config(Method::kOrdupTs, 4, 91);
  config.network.jitter_us = 5'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 16; ++i) {
    MustSubmit(system, i % 4,
               {Operation::Write(0, Value(int64_t{100 + i})),
                Operation::Append(1, "x")});
    system.RunFor(2'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 1).AsString().size(), 16u);
  auto sr = analysis::CheckUpdateSerializability(system.history(), 4);
  EXPECT_TRUE(sr.serializable) << sr.violation;
}

TEST(OrdupTsTest, SurvivesLossAndReordering) {
  auto config = Config(Method::kOrdupTs, 3, 93);
  config.network.loss_probability = 0.2;
  config.network.jitter_us = 4'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 20; ++i) {
    MustSubmit(system, i % 3, {Operation::Increment(0, 1)});
    system.RunFor(1'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 20);
}

TEST(OrdupTsTest, EpsilonZeroQueryPausesReleaseAndIsSr) {
  auto config = Config(Method::kOrdupTs);
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();

  const EtId q = system.BeginQuery(1, /*epsilon=*/0);
  Result<Value> first = system.TryRead(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 1);
  MustSubmit(system, 0, {Operation::Increment(0, 100)});
  system.RunFor(1'000'000);
  Result<Value> second = system.TryRead(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 1) << "release paused at the query's pin";
  EXPECT_EQ(system.query_state(q)->inconsistency, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 101);
}

TEST(OrdupTsTest, QueryChargedPerConflictingReleasedUpdate) {
  auto config = Config(Method::kOrdupTs);
  ReplicatedSystem system(config);
  const EtId q = system.BeginQuery(1, /*epsilon=*/10);
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  for (int i = 0; i < 3; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
  }
  system.RunUntilQuiescent();
  Result<Value> second = system.TryRead(q, 0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 3);
  EXPECT_EQ(system.query_state(q)->inconsistency, 3);
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  EXPECT_EQ(system.query_state(q)->inconsistency, 3) << "no double charge";
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(OrdupTsTest, LimitForcesStrictRestartViaReadApi) {
  auto config = Config(Method::kOrdupTs);
  ReplicatedSystem system(config);
  const EtId q = system.BeginQuery(1, /*epsilon=*/1);
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  for (int i = 0; i < 4; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
  }
  system.RunUntilQuiescent();
  Result<Value> direct = system.TryRead(q, 0);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsInconsistencyLimit());
  bool done = false;
  system.Read(q, 0, [&](Result<Value> v) {
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 4);
    done = true;
  });
  system.RunUntilQuiescent();
  EXPECT_TRUE(done);
  EXPECT_EQ(system.query_state(q)->restarts, 1);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(OrdupTsTest, Epsilon0QueriesPrefixConsistentUnderChurn) {
  auto config = Config(Method::kOrdupTs, 3, 95);
  config.network.jitter_us = 2'000;
  config.heartbeat_interval_us = 5'000;
  ReplicatedSystem system(config);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      MustSubmit(system, i,
                 {Operation::Increment(i % 2, 1),
                  Operation::Increment(2 + (i % 2), 1)});
    }
    system.RunFor(20'000);
    RunQuery(system, round % 3, /*epsilon=*/0, {0, 1, 2, 3});
  }
  system.RunUntilQuiescent();
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  ASSERT_TRUE(sr.serializable) << sr.violation;
  auto reports = analysis::AnalyzeQueries(system.history(), sr.serial_order);
  ASSERT_EQ(reports.size(), 5u);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.prefix_consistent)
        << "epsilon=0 ORDUP-TS query " << r.query << " must be 1SR";
  }
}

TEST(OrdupTsTest, RestartWhilePausedDoesNotLeakReleasePause) {
  // Same regression as ORDUP's: a strict query restarted while pausing the
  // release path must hand the pause back (OnQueryRestart), or the site's
  // holdback buffer never drains again.
  ReplicatedSystem system(Config(Method::kOrdupTs));
  ReplicaControlMethod* m = system.site_method(1);
  QueryState q;
  q.id = 999;
  q.site = 1;
  q.epsilon = 0;  // strict from the first read: pauses the release
  ASSERT_TRUE(m->TryQueryRead(q, 0).ok());
  ASSERT_TRUE(q.holds_pause);
  m->OnQueryRestart(q);
  EXPECT_FALSE(q.holds_pause);
  q.ResetForRestart();
  MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 5)
      << "release path must make progress after the restart";
  // And the facade-style sequence without the hook: reset while holding,
  // strict re-read must not stack a second pause, OnQueryEnd releases all.
  QueryState q2;
  q2.id = 998;
  q2.site = 1;
  q2.epsilon = 0;
  ASSERT_TRUE(m->TryQueryRead(q2, 0).ok());
  ASSERT_TRUE(q2.holds_pause);
  q2.ResetForRestart();
  ASSERT_TRUE(m->TryQueryRead(q2, 0).ok());
  m->OnQueryEnd(q2);
  EXPECT_FALSE(q2.holds_pause);
  MustSubmit(system, 0, {Operation::Increment(0, 2)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 7);
  EXPECT_TRUE(system.Converged());
}

TEST(OrdupTsTest, CrashedOriginStallsReleasesButNotCommits) {
  // The decentralized trade: no order-server dependency for COMMITS (they
  // stay local even with site 0 down), but a dead origin freezes the
  // watermark floor, so RELEASES stall everywhere until it returns — the
  // classic weakness of watermark-based total order, demonstrated.
  auto config = Config(Method::kOrdupTs, 3, 97);
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(sim::CrashSpec{0, 1'000, 800'000});
  system.RunFor(5'000);
  int committed = 0;
  for (int i = 0; i < 5; ++i) {
    MustSubmit(system, 1 + (i % 2), {Operation::Increment(0, 1)},
               [&](Status s) { committed += s.ok(); });
  }
  EXPECT_EQ(committed, 5) << "commits are local; no order server involved";
  system.RunFor(300'000);
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 0)
      << "releases wait on the crashed origin's watermark";
  system.RunUntilQuiescent();  // site 0 restarts; heartbeats resume
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 5);
}

}  // namespace
}  // namespace esr::core
