#include "msg/persistent_pipe.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace esr::msg {
namespace {

class PersistentPipeTest : public ::testing::Test {
 protected:
  void Build(sim::NetworkConfig net_config,
             PersistentPipeConfig pipe_config = {}) {
    net_ = std::make_unique<sim::Network>(&sim_, 3, net_config, /*seed=*/5);
    for (SiteId s = 0; s < 3; ++s) {
      mailboxes_.push_back(std::make_unique<Mailbox>(net_.get(), s));
      pipes_.push_back(std::make_unique<PersistentPipeManager>(
          &sim_, mailboxes_.back().get(), pipe_config));
      SiteId site = s;
      pipes_.back()->SetDeliverHandler(
          [this, site](SiteId src, const std::any& payload) {
            delivered_[site].emplace_back(src, std::any_cast<int>(payload));
          });
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<PersistentPipeManager>> pipes_;
  std::vector<std::pair<SiteId, int>> delivered_[3];
};

TEST_F(PersistentPipeTest, DeliversInOrderOnCleanNetwork) {
  Build(sim::NetworkConfig{});
  for (int i = 0; i < 20; ++i) pipes_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(delivered_[1][i].second, i);
  EXPECT_EQ(pipes_[0]->UnackedCount(), 0);
}

TEST_F(PersistentPipeTest, WindowLimitsInFlightSegments) {
  PersistentPipeConfig config;
  config.window = 2;
  sim::NetworkConfig net;
  net.base_latency_us = 10'000;
  net.jitter_us = 0;
  Build(net, config);
  for (int i = 0; i < 6; ++i) pipes_[0]->Send(1, i);
  // Before any ack returns, only the window can be in flight.
  sim_.RunUntil(11'000);
  EXPECT_EQ(delivered_[1].size(), 2u) << "window of 2 delivered first";
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(delivered_[1][i].second, i);
}

TEST_F(PersistentPipeTest, SurvivesHeavyLossViaGoBackN) {
  sim::NetworkConfig net;
  net.loss_probability = 0.4;
  Build(net);
  for (int i = 0; i < 50; ++i) pipes_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(delivered_[1][i].second, i);
  EXPECT_GT(pipes_[0]->counters().Get("pipe.retransmit"), 0);
  EXPECT_EQ(pipes_[0]->UnackedCount(), 0);
}

TEST_F(PersistentPipeTest, ReorderedSegmentsBufferedAndDeliveredInOrder) {
  sim::NetworkConfig net;
  net.jitter_us = 8'000;  // heavy reordering
  Build(net);
  for (int i = 0; i < 30; ++i) pipes_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(delivered_[1][i].second, i);
  EXPECT_GT(pipes_[1]->counters().Get("pipe.buffered_out_of_order"), 0)
      << "jitter-level reordering absorbed by the receiver buffer";
}

TEST_F(PersistentPipeTest, ReceiverCrashDelaysDelivery) {
  Build(sim::NetworkConfig{});
  net_->SetSiteDown(1);
  pipes_[0]->Send(1, 7);
  sim_.RunUntil(200'000);
  EXPECT_TRUE(delivered_[1].empty());
  EXPECT_EQ(pipes_[0]->UnackedCount(), 1);
  net_->SetSiteUp(1);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 1u);
  EXPECT_EQ(pipes_[0]->UnackedCount(), 0);
}

TEST_F(PersistentPipeTest, PartitionHealsAndPipeResumes) {
  Build(sim::NetworkConfig{});
  net_->SetPartition({{0}, {1, 2}});
  for (int i = 0; i < 5; ++i) pipes_[0]->Send(2, i);
  sim_.RunUntil(300'000);
  EXPECT_TRUE(delivered_[2].empty());
  net_->HealPartition();
  sim_.Run();
  ASSERT_EQ(delivered_[2].size(), 5u);
}

TEST_F(PersistentPipeTest, BroadcastReachesAllOthers) {
  Build(sim::NetworkConfig{});
  pipes_[1]->Broadcast(9);
  sim_.Run();
  EXPECT_EQ(delivered_[0].size(), 1u);
  EXPECT_EQ(delivered_[2].size(), 1u);
  EXPECT_TRUE(delivered_[1].empty());
}

TEST_F(PersistentPipeTest, IndependentPipesPerDestination) {
  sim::NetworkConfig net;
  net.base_latency_us = 1'000;
  Build(net);
  // Slow link to site 1 must not stall the pipe to site 2.
  net_->SetLinkLatency(0, 1, 500'000);
  pipes_[0]->Send(1, 100);
  pipes_[0]->Send(2, 200);
  sim_.RunUntil(50'000);
  EXPECT_TRUE(delivered_[1].empty());
  ASSERT_EQ(delivered_[2].size(), 1u);
  sim_.Run();
  EXPECT_EQ(delivered_[1].size(), 1u);
}

TEST_F(PersistentPipeTest, EnvelopePayloadsRouteThroughMailboxByDefault) {
  Build(sim::NetworkConfig{});
  int got = 0;
  mailboxes_[2]->RegisterHandler(
      300, [&](SiteId, const std::any& body) { got = std::any_cast<int>(body); });
  // A fresh manager without a custom handler dispatches envelopes.
  PersistentPipeManager fresh(&sim_, mailboxes_[2].get(),
                              PersistentPipeConfig{});
  pipes_[0]->Send(2, Envelope{300, 77});
  sim_.Run();
  EXPECT_EQ(got, 77);
}

}  // namespace
}  // namespace esr::msg
