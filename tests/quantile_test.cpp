#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "obs/metric_registry.h"
#include "test_util.h"

namespace esr::obs {
namespace {

using test::ValidatePrometheusExposition;

TEST(P2QuantileTest, ExactForSmallSampleSets) {
  P2Quantile median(0.5);
  EXPECT_TRUE(std::isnan(median.Value())) << "no samples yet";
  median.Observe(10);
  EXPECT_DOUBLE_EQ(median.Value(), 10);
  median.Observe(30);
  median.Observe(20);
  // Three samples: the exact median is the middle order statistic.
  EXPECT_DOUBLE_EQ(median.Value(), 20);
}

TEST(P2QuantileTest, TracksExactPercentilesOnSeededStreams) {
  // The regression the satellite asks for: P² estimates vs the exact
  // Summary percentiles on seeded pseudo-random data. P² error bounds are
  // distribution-dependent; for these smooth unimodal streams a 5% relative
  // corridor (widened by a small absolute floor near zero) is comfortably
  // loose while still catching marker-update bugs, which typically produce
  // order-of-magnitude drift.
  struct Stream {
    const char* name;
    bool exponential;
  };
  const Stream streams[] = {{"uniform", false}, {"exponential", true}};
  const double quantiles[] = {0.5, 0.95, 0.99};
  for (const Stream& stream : streams) {
    for (double q : quantiles) {
      Rng rng(/*seed=*/42);
      P2Quantile estimator(q);
      Summary exact;
      for (int i = 0; i < 20000; ++i) {
        const double v = stream.exponential ? rng.Exponential(1000.0)
                                            : 500.0 + rng.NextDouble() * 9500.0;
        estimator.Observe(v);
        exact.Add(v);
      }
      const double expected = exact.Percentile(q * 100.0);
      const double got = estimator.Value();
      const double tolerance = 0.05 * expected + 1.0;
      EXPECT_NEAR(got, expected, tolerance)
          << stream.name << " q=" << q << " exact=" << expected
          << " p2=" << got;
    }
  }
}

TEST(P2QuantileTest, DeterministicForIdenticalStreams) {
  Rng a_rng(7), b_rng(7);
  P2Quantile a(0.95), b(0.95);
  for (int i = 0; i < 5000; ++i) {
    a.Observe(a_rng.Exponential(250.0));
    b.Observe(b_rng.Exponential(250.0));
  }
  EXPECT_DOUBLE_EQ(a.Value(), b.Value());
  EXPECT_EQ(a.count(), b.count());
}

TEST(HistogramQuantileTest, ExportsQuantileSeriesOncePopulated) {
  MetricRegistry metrics;
  Histogram& h = metrics.GetHistogram("esr_stability_lag_us",
                                      {{"method", "ordup"}});
  // Below five samples the companion family stays silent (the estimate
  // would just be an order statistic of a tiny set).
  h.Observe(100);
  std::string text = metrics.PrometheusText();
  EXPECT_EQ(text.find("esr_stability_lag_us_quantile"), std::string::npos);
  EXPECT_EQ(ValidatePrometheusExposition(text), "");

  for (double v : {200.0, 300.0, 400.0, 500.0, 600.0, 700.0}) h.Observe(v);
  text = metrics.PrometheusText();
  EXPECT_EQ(ValidatePrometheusExposition(text), "");
  EXPECT_NE(
      text.find(
          "esr_stability_lag_us_quantile{method=\"ordup\",quantile=\"0.5\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "esr_stability_lag_us_quantile{method=\"ordup\",quantile=\"0.95\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "esr_stability_lag_us_quantile{method=\"ordup\",quantile=\"0.99\"}"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE esr_stability_lag_us_quantile gauge"),
            std::string::npos);

  EXPECT_NEAR(h.QuantileValue(0.5), 400.0, 100.0);
  EXPECT_TRUE(std::isnan(h.QuantileValue(0.25))) << "untracked quantile";
}

TEST(HistogramQuantileTest, QuantilesSurviveRegistryMerge) {
  // Merge folds counts and buckets but deliberately not P² marker state
  // (marker positions of different streams cannot be combined). The merged
  // registry's exposition must stay valid either way.
  MetricRegistry a, b;
  Histogram& ha = a.GetHistogram("esr_lag_us");
  Histogram& hb = b.GetHistogram("esr_lag_us");
  for (int i = 1; i <= 10; ++i) {
    ha.Observe(i * 10.0);
    hb.Observe(i * 1000.0);
  }
  a.Merge(b);
  EXPECT_EQ(a.GetHistogram("esr_lag_us").count(), 20);
  EXPECT_EQ(ValidatePrometheusExposition(a.PrometheusText()), "");

  // The bench-harness shape: folding into a fresh registry whose own
  // estimators never saw a sample. count() is 10 there, but the quantile
  // family must stay silent rather than export NaN estimates.
  MetricRegistry fresh;
  fresh.Merge(b);
  EXPECT_EQ(fresh.GetHistogram("esr_lag_us").count(), 10);
  const std::string text = fresh.PrometheusText();
  EXPECT_EQ(text.find("esr_lag_us_quantile"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(ValidatePrometheusExposition(text), "");
}

}  // namespace
}  // namespace esr::obs
