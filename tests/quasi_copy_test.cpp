#include "esr/quasi_copy.h"

#include <gtest/gtest.h>

#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(QuasiCopyTest, PrimaryAppliesAndCachesRefresh) {
  auto config = Config(Method::kQuasiCopy);
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.SiteValue(s, 0).AsInt(), 5) << "site " << s;
  }
  EXPECT_TRUE(system.Converged());
}

TEST(QuasiCopyTest, RemoteUpdatePaysPrimaryRoundTrip) {
  auto config = Config(Method::kQuasiCopy);
  config.network.base_latency_us = 40'000;
  config.network.jitter_us = 0;
  ReplicatedSystem system(config);
  SimTime committed_at = -1;
  MustSubmit(system, 2, {Operation::Increment(0, 1)},
             [&](Status s) {
               ASSERT_TRUE(s.ok());
               committed_at = system.simulator().Now();
             });
  system.RunUntilQuiescent();
  EXPECT_GE(committed_at, 80'000) << "forward + ack round trip";
}

TEST(QuasiCopyTest, VersionLagBatchesRefreshes) {
  auto config = Config(Method::kQuasiCopy);
  config.quasi_version_lag = 3;
  ReplicatedSystem system(config);
  // Two updates: below the lag bound, caches stay stale.
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunFor(300'000);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 2) << "primary current";
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 0) << "cache lags within bound";
  auto* primary = static_cast<QuasiCopyMethod*>(system.site_method(0));
  EXPECT_EQ(primary->DirtyCount(), 1);
  // Third update trips the version condition.
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunFor(300'000);
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 3);
  EXPECT_EQ(primary->DirtyCount(), 0);
}

TEST(QuasiCopyTest, QuiesceFlushConvergesLaggingCaches) {
  auto config = Config(Method::kQuasiCopy);
  config.quasi_version_lag = 100;  // never trips on its own
  ReplicatedSystem system(config);
  MustSubmit(system, 1, {Operation::Increment(0, 9)});
  system.RunUntilQuiescent();  // drains with a final flush
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 9);
}

TEST(QuasiCopyTest, PeriodicRefreshViaDelayCondition) {
  auto config = Config(Method::kQuasiCopy);
  config.quasi_version_lag = 1'000;
  config.quasi_refresh_interval_us = 50'000;
  config.heartbeat_interval_us = 50'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 4)});
  system.RunFor(400'000);
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 4)
      << "delay condition refreshed the cache without hitting the lag bound";
}

TEST(QuasiCopyTest, DelayConditionFiresWithHeartbeatsDisabled) {
  // Regression: the periodic refresh used to ride the heartbeat schedule,
  // so refresh_interval > 0 with heartbeats off silently never refreshed.
  auto config = Config(Method::kQuasiCopy);
  config.quasi_version_lag = 1'000;  // version condition out of the way
  config.quasi_refresh_interval_us = 20'000;
  config.heartbeat_interval_us = 0;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 6)});
  system.RunFor(200'000);
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 6)
      << "delay condition must run on its own timer, not on heartbeats";
}

TEST(QuasiCopyTest, DelayConditionHonorsConfiguredInterval) {
  // Regression: with both timers configured, refresh used to run at
  // heartbeat cadence. A 20ms refresh interval under a 300ms heartbeat
  // must still propagate well before the first heartbeat.
  auto config = Config(Method::kQuasiCopy);
  config.quasi_version_lag = 1'000;
  config.quasi_refresh_interval_us = 20'000;
  config.heartbeat_interval_us = 300'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 8)});
  system.RunFor(100'000);  // several refresh periods, zero heartbeats
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 8)
      << "refresh cadence must follow quasi_refresh_interval_us";
}

TEST(QuasiCopyTest, UpdatesAre1srAtPrimary) {
  auto config = Config(Method::kQuasiCopy, 3, 111);
  config.network.jitter_us = 3'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 15; ++i) {
    MustSubmit(system, i % 3, {Operation::Write(0, Value(int64_t{i}))});
    system.RunFor(2'000);
  }
  system.RunUntilQuiescent();
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(sr.serializable) << sr.violation;
  EXPECT_TRUE(system.Converged());
}

TEST(QuasiCopyTest, CachesAnswerStaleDuringPartitionUpdatesBlock) {
  auto config = Config(Method::kQuasiCopy);
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 7)});
  system.RunUntilQuiescent();
  system.network().SetPartition({{0}, {1, 2}});
  // Cache reads keep working (the read-only redundancy win)...
  auto values = RunQuery(system, 2, kUnboundedEpsilon, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 7);
  // ...but updates from the partitioned side block on the primary.
  bool committed = false;
  MustSubmit(system, 1, {Operation::Increment(0, 1)},
             [&](Status) { committed = true; });
  system.RunFor(400'000);
  EXPECT_FALSE(committed) << "primary unreachable: no update 1SR possible";
  system.network().HealPartition();
  system.RunUntilQuiescent();
  EXPECT_TRUE(committed);
  EXPECT_TRUE(system.Converged());
}

TEST(QuasiCopyTest, RefreshReorderingCannotRegressCaches) {
  auto config = Config(Method::kQuasiCopy, 3, 113);
  config.network.jitter_us = 8'000;
  config.queue.fifo = false;  // allow refresh reordering
  ReplicatedSystem system(config);
  for (int i = 1; i <= 10; ++i) {
    MustSubmit(system, 0, {Operation::Write(0, Value(int64_t{i}))});
    system.RunFor(1'000);
  }
  system.RunUntilQuiescent();
  // Timestamped refreshes: the newest value wins everywhere.
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 10);
}

}  // namespace
}  // namespace esr::core
