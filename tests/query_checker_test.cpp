#include "analysis/query_checker.h"

#include <gtest/gtest.h>

namespace esr::analysis {
namespace {

using store::Operation;

UpdateRecord Update(EtId et, std::vector<Operation> ops) {
  UpdateRecord u;
  u.et = et;
  u.origin = 0;
  u.ops = std::move(ops);
  return u;
}

ReadRecord Read(EtId query, ObjectId object, int64_t value,
                int64_t site_apply_index = 0, SiteId site = 0) {
  ReadRecord r;
  r.query = query;
  r.site = site;
  r.object = object;
  r.value = Value(value);
  r.site_apply_index = site_apply_index;
  return r;
}

QueryRecord Query(EtId query, int64_t epsilon, int64_t charged,
                  SiteId site = 0) {
  QueryRecord q;
  q.query = query;
  q.site = site;
  q.epsilon = epsilon;
  q.final_inconsistency = charged;
  q.completed = true;
  return q;
}

TEST(QueryCheckerTest, SerialStateReplaysPrefix) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 10)}));
  h.RecordUpdateCommit(Update(2, {Operation::Increment(0, 5)}));
  auto full = ComputeSerialState(h, {1, 2});
  EXPECT_EQ(full.at(0).AsInt(), 15);
  auto prefix1 = ComputeSerialState(h, {1, 2}, 1);
  EXPECT_EQ(prefix1.at(0).AsInt(), 10);
  auto prefix0 = ComputeSerialState(h, {1, 2}, 0);
  EXPECT_TRUE(prefix0.empty());
}

TEST(QueryCheckerTest, SerialStateSkipsAborted) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 10)}));
  h.RecordUpdateAborted(1);
  auto full = ComputeSerialState(h, {1});
  EXPECT_TRUE(full.empty() || full.at(0).AsInt() == 0);
}

TEST(QueryCheckerTest, PrefixConsistentReadVector) {
  HistoryRecorder h;
  h.RecordUpdateCommit(
      Update(1, {Operation::Increment(0, 1), Operation::Increment(1, 1)}));
  h.RecordUpdateCommit(
      Update(2, {Operation::Increment(0, 1), Operation::Increment(1, 1)}));
  // Query saw both objects after update 1: consistent with prefix 1.
  h.RecordRead(Read(10, 0, 1));
  h.RecordRead(Read(10, 1, 1));
  EXPECT_TRUE(PrefixConsistent(h, {1, 2}, 10));
}

TEST(QueryCheckerTest, TornReadVectorIsInconsistent) {
  HistoryRecorder h;
  h.RecordUpdateCommit(
      Update(1, {Operation::Increment(0, 1), Operation::Increment(1, 1)}));
  h.RecordUpdateCommit(
      Update(2, {Operation::Increment(0, 1), Operation::Increment(1, 1)}));
  // Object 0 after both updates, object 1 after none: no prefix matches.
  h.RecordRead(Read(10, 0, 2));
  h.RecordRead(Read(10, 1, 0));
  EXPECT_FALSE(PrefixConsistent(h, {1, 2}, 10));
}

TEST(QueryCheckerTest, ReadOfUntouchedObjectMatchesEverywhere) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 1)}));
  h.RecordRead(Read(10, 99, 0));  // untouched object at initial value
  h.RecordRead(Read(10, 0, 1));
  EXPECT_TRUE(PrefixConsistent(h, {1}, 10));
}

TEST(QueryCheckerTest, WrongValueOfUntouchedObjectFails) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 1)}));
  h.RecordRead(Read(10, 99, 7));  // impossible value
  EXPECT_FALSE(PrefixConsistent(h, {1}, 10));
}

TEST(QueryCheckerTest, EmptyQueryIsConsistent) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 1)}));
  EXPECT_TRUE(PrefixConsistent(h, {1}, 42));
}

TEST(QueryCheckerTest, AnalyzeReportsChargedAndValueError) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 10)}));
  h.RecordApply(1, 0, 5);
  // The query read 0 before the update landed locally (value 0), final
  // converged value is 10 -> value error 10.
  h.RecordRead(Read(20, 0, 0, /*site_apply_index=*/0));
  h.RecordQueryEnd(Query(20, /*epsilon=*/3, /*charged=*/1));
  auto reports = AnalyzeQueries(h, {1});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].charged, 1);
  EXPECT_EQ(reports[0].epsilon, 3);
  EXPECT_DOUBLE_EQ(reports[0].max_value_error_vs_final, 10.0);
  EXPECT_TRUE(reports[0].prefix_consistent)
      << "reading the initial state is the empty prefix";
}

TEST(QueryCheckerTest, ObservedConflictsCountDriftAtTheSite) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 1)}));
  h.RecordUpdateCommit(Update(2, {Operation::Increment(0, 1)}));
  h.RecordApply(1, 0, 5);
  h.RecordApply(2, 0, 9);
  // First read before anything applied; second read after both applies.
  h.RecordRead(Read(20, 1, 0, /*site_apply_index=*/0));
  h.RecordRead(Read(20, 0, 2, /*site_apply_index=*/2));
  h.RecordQueryEnd(Query(20, 10, 2));
  auto reports = AnalyzeQueries(h, {1, 2});
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].observed_conflicts, 2)
      << "both updates of object 0 drifted past the first read";
}

TEST(QueryCheckerTest, IncompleteQueriesSkipped) {
  HistoryRecorder h;
  QueryRecord q = Query(20, 1, 0);
  q.completed = false;
  h.RecordQueryEnd(q);
  EXPECT_TRUE(AnalyzeQueries(h, {}).empty());
}

}  // namespace
}  // namespace esr::analysis
