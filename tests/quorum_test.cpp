#include "cc/quorum.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace esr::cc {
namespace {

class QuorumTest : public ::testing::Test {
 protected:
  void Build(int num_sites, QuorumConfig config = {},
             sim::NetworkConfig net_config = {}) {
    net_ = std::make_unique<sim::Network>(&sim_, num_sites, net_config, 5);
    for (SiteId s = 0; s < num_sites; ++s) {
      mailboxes_.push_back(std::make_unique<msg::Mailbox>(net_.get(), s));
      engines_.push_back(std::make_unique<QuorumEngine>(
          &sim_, mailboxes_.back().get(), num_sites, config));
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<msg::Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<QuorumEngine>> engines_;
};

TEST_F(QuorumTest, UpdateThenReadSeesValue) {
  Build(3);
  Status update = Status::Internal("pending");
  engines_[0]->UpdateQuorum({store::Operation::Increment(0, 9)},
                            [&](Status s) { update = s; });
  sim_.Run();
  ASSERT_TRUE(update.ok());
  int64_t got = -1;
  engines_[2]->ReadQuorum(0, [&](Result<Value> v) {
    ASSERT_TRUE(v.ok());
    got = v->AsInt();
  });
  sim_.Run();
  EXPECT_EQ(got, 9);
}

TEST_F(QuorumTest, ReadIntersectsWriteQuorum) {
  Build(5);
  Status update = Status::Internal("pending");
  engines_[0]->UpdateQuorum(
      {store::Operation::Write(0, Value(int64_t{42}))},
      [&](Status s) { update = s; });
  sim_.Run();
  ASSERT_TRUE(update.ok());
  // Even a reader whose local replica is stale must see 42 via the quorum.
  for (SiteId s = 0; s < 5; ++s) {
    int64_t got = -1;
    engines_[s]->ReadQuorum(0, [&](Result<Value> v) { got = v->AsInt(); });
    sim_.Run();
    EXPECT_EQ(got, 42) << "reader " << s;
  }
}

TEST_F(QuorumTest, SequentialUpdatesAccumulate) {
  Build(3);
  int done = 0;
  std::function<void(int)> next = [&](int remaining) {
    if (remaining == 0) return;
    engines_[remaining % 3]->UpdateQuorum(
        {store::Operation::Increment(1, 1)}, [&, remaining](Status s) {
          ASSERT_TRUE(s.ok());
          ++done;
          next(remaining - 1);
        });
  };
  next(6);
  sim_.Run();
  EXPECT_EQ(done, 6);
  int64_t got = -1;
  engines_[0]->ReadQuorum(1, [&](Result<Value> v) { got = v->AsInt(); });
  sim_.Run();
  EXPECT_EQ(got, 6);
}

TEST_F(QuorumTest, MinorityPartitionBlocksOperations) {
  Build(5);
  net_->SetPartition({{0}, {1, 2, 3, 4}});
  bool read_done = false;
  engines_[0]->ReadQuorum(0, [&](Result<Value>) { read_done = true; });
  sim_.RunUntil(1'000'000);
  EXPECT_FALSE(read_done) << "one site cannot form a majority read quorum";
  net_->HealPartition();
  sim_.Run();
  EXPECT_TRUE(read_done);
}

TEST_F(QuorumTest, MajorityPartitionKeepsWorking) {
  Build(5);
  net_->SetPartition({{0, 1, 2}, {3, 4}});
  bool done = false;
  engines_[1]->UpdateQuorum({store::Operation::Increment(0, 1)},
                            [&](Status s) {
                              done = true;
                              EXPECT_TRUE(s.ok());
                            });
  sim_.RunUntil(1'000'000);
  EXPECT_TRUE(done) << "a 3-of-5 majority commits during the partition";
}

TEST_F(QuorumTest, CrashedReplicaToleratedWithinQuorum) {
  Build(3);
  net_->SetSiteDown(2);
  bool done = false;
  engines_[0]->UpdateQuorum({store::Operation::Increment(0, 4)},
                            [&](Status s) {
                              done = true;
                              EXPECT_TRUE(s.ok());
                            });
  sim_.RunUntil(500'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(engines_[2]->LocalVersion(0), 0) << "down replica missed it";
  int64_t got = -1;
  engines_[1]->ReadQuorum(0, [&](Result<Value> v) { got = v->AsInt(); });
  sim_.RunUntil(1'000'000);
  EXPECT_EQ(got, 4);
}

TEST_F(QuorumTest, CustomQuorumSizesHonored) {
  QuorumConfig config;
  config.read_quorum = 1;
  config.write_quorum = 3;  // r + w = 4 > 3
  Build(3, config);
  Status update = Status::Internal("pending");
  engines_[0]->UpdateQuorum({store::Operation::Increment(0, 2)},
                            [&](Status s) { update = s; });
  sim_.Run();
  ASSERT_TRUE(update.ok());
  // With w = n, every replica has the write; r = 1 read is safe and local.
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(engines_[s]->LocalValue(0).AsInt(), 2);
  }
}

TEST_F(QuorumTest, LossyNetworkRetriesUntilQuorum) {
  sim::NetworkConfig net;
  net.loss_probability = 0.4;
  Build(3, QuorumConfig{}, net);
  bool done = false;
  engines_[0]->UpdateQuorum({store::Operation::Increment(0, 1)},
                            [&](Status s) {
                              done = true;
                              EXPECT_TRUE(s.ok());
                            });
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(QuorumTest, CancelPendingStopsRetries) {
  Build(3);
  net_->SetPartition({{0}, {1, 2}});
  engines_[0]->ReadQuorum(0, [](Result<Value>) { FAIL() << "cancelled"; });
  sim_.RunUntil(100'000);
  engines_[0]->CancelPending();
  sim_.Run();  // must terminate: no retry timers left
  SUCCEED();
}

}  // namespace
}  // namespace esr::cc
