// Amnesia-crash recovery against the full replica control stack: a crashed
// site loses ALL volatile state (stores, logs, clock, method instance) and
// must rebuild through checkpoint load + WAL replay + anti-entropy
// catch-up, converging to the same 1SR final state a crash-free run
// reaches. The fail-stop crash tests in failure_integration_test.cpp keep
// covering the frozen-state model; everything here runs with
// config.recovery.enabled and amnesia=true crash windows.

#include <gtest/gtest.h>

#include <filesystem>
#include <tuple>
#include <vector>

#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

SystemConfig CrashConfig(Method method, uint64_t seed) {
  SystemConfig config = Config(method, 3, seed);
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval_us = 40'000;
  return config;
}

// The amnesia window used throughout: site 2 loses its volatile state at
// 25ms and recovers at 160ms, mid-workload. Sites 0/1 (the updaters, and
// the ORDUP sequencer) are never crashed, so both runs of a crash/no-crash
// pair submit the identical update sequence.
constexpr sim::CrashSpec kAmnesia{/*site=*/2, /*crash_at=*/25'000,
                                  /*restart_at=*/160'000, /*amnesia=*/true};

struct WorkloadResult {
  bool converged = false;
  int64_t value0 = 0;
  int64_t value1 = 0;
  std::vector<uint64_t> digests;
};

// Twelve increments from alternating origins; COMPE variants decide each
// update commit so it can stabilize. Commutative deltas make the final
// state independent of message-timing differences between the crash and
// no-crash executions.
WorkloadResult RunCounterWorkload(const SystemConfig& config, bool crash) {
  ReplicatedSystem system(config);
  const bool compe = config.method == Method::kCompe ||
                     config.method == Method::kCompeOrdered;
  if (crash) system.failures().ScheduleCrash(kAmnesia);
  for (int i = 0; i < 12; ++i) {
    const EtId et = MustSubmit(
        system, i % 2,
        {Operation::Increment(0, 1), Operation::Increment(1, i)});
    if (compe) {
      EXPECT_TRUE(system.Decide(et, true).ok());
    }
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  WorkloadResult result;
  result.converged = system.Converged();
  result.value0 = system.SiteValue(2, 0).AsInt();
  result.value1 = system.SiteValue(2, 1).AsInt();
  for (SiteId s = 0; s < 3; ++s) {
    result.digests.push_back(system.SiteDigest(s));
  }
  return result;
}

TEST(RecoveryIntegrationTest, CounterMethodsConvergeLikeNoCrashRun) {
  for (Method method : {Method::kCommu, Method::kOrdup, Method::kOrdupTs,
                        Method::kCompe, Method::kCompeOrdered}) {
    SCOPED_TRACE(std::string(MethodToString(method)));
    const WorkloadResult baseline =
        RunCounterWorkload(CrashConfig(method, 91), /*crash=*/false);
    const WorkloadResult crashed =
        RunCounterWorkload(CrashConfig(method, 91), /*crash=*/true);
    EXPECT_TRUE(baseline.converged);
    EXPECT_TRUE(crashed.converged);
    EXPECT_EQ(crashed.value0, 12);
    EXPECT_EQ(crashed.value1, 66);
    EXPECT_EQ(crashed.value0, baseline.value0);
    EXPECT_EQ(crashed.value1, baseline.value1);
  }
}

TEST(RecoveryIntegrationTest, RituWritesSurviveAmnesiaCrash) {
  for (Method method : {Method::kRituMulti, Method::kRituSingle}) {
    SCOPED_TRACE(std::string(MethodToString(method)));
    SystemConfig config = CrashConfig(method, 93);
    ReplicatedSystem system(config);
    system.failures().ScheduleCrash(kAmnesia);
    // One write per object: the final image is exactly the set of admitted
    // updates, so any lost or phantom write shows up as a wrong value.
    for (int i = 0; i < 10; ++i) {
      MustSubmit(system, i % 2,
                 {Operation::TimestampedWrite(10 + i, Value(int64_t{100 + i}),
                                              kZeroTimestamp)});
      system.RunFor(12'000);
    }
    system.RunUntilQuiescent();
    EXPECT_TRUE(system.Converged());
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(system.SiteValue(2, 10 + i).AsInt(), 100 + i)
          << "object " << 10 + i;
    }
  }
}

TEST(RecoveryIntegrationTest, OrdupTotalOrderPreservedAcrossRestart) {
  // Non-commutative writes to one object: if the recovered site applied
  // them in any order other than the global one, its final value would
  // differ from the never-crashed sites and convergence would fail.
  SystemConfig config = CrashConfig(Method::kOrdup, 95);
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(kAmnesia);
  for (int i = 0; i < 12; ++i) {
    MustSubmit(system, i % 2, {Operation::Write(0, Value(int64_t{1000 + i}))});
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  const int64_t final_value = system.SiteValue(0, 0).AsInt();
  EXPECT_GE(final_value, 1000);
  EXPECT_LE(final_value, 1011);
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), final_value);
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(sr.serializable) << sr.violation;
  const auto& report = system.recovery_manager()->last_report(2);
  EXPECT_GE(report.catchup_done_at, 0) << "catch-up completed";
}

TEST(RecoveryIntegrationTest, SameSeedYieldsIdenticalPostRecoveryState) {
  for (Method method : {Method::kCommu, Method::kCompeOrdered}) {
    SCOPED_TRACE(std::string(MethodToString(method)));
    const WorkloadResult a =
        RunCounterWorkload(CrashConfig(method, 97), /*crash=*/true);
    const WorkloadResult b =
        RunCounterWorkload(CrashConfig(method, 97), /*crash=*/true);
    EXPECT_EQ(a.digests, b.digests)
        << "post-recovery state must be a pure function of (config, seed)";
    EXPECT_EQ(a.value0, b.value0);
    EXPECT_EQ(a.value1, b.value1);
  }
}

TEST(RecoveryIntegrationTest, UnflushedWalTailIsHealedByCatchup) {
  // Group commit so lazy that nothing of site 2's WAL reaches stable
  // storage before the crash (the first checkpoint would have been at
  // 40ms; the crash hits at 25ms). The whole tail is the data-loss window;
  // peers must supply everything through catch-up.
  SystemConfig config = CrashConfig(Method::kCommu, 99);
  config.recovery.group_commit_records = 1024;
  config.recovery.group_commit_interval_us = 10'000'000;
  const WorkloadResult crashed = RunCounterWorkload(config, /*crash=*/true);
  EXPECT_TRUE(crashed.converged);
  EXPECT_EQ(crashed.value0, 12);
  EXPECT_EQ(crashed.value1, 66);
}

TEST(RecoveryIntegrationTest, RecoveryReportReflectsCheckpointAndCatchup) {
  SystemConfig config = CrashConfig(Method::kCommu, 101);
  config.recovery.checkpoint_interval_us = 20'000;  // one before the crash
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(kAmnesia);
  for (int i = 0; i < 12; ++i) {
    MustSubmit(system, i % 2, {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  const auto& report = system.recovery_manager()->last_report(2);
  EXPECT_TRUE(report.had_checkpoint);
  EXPECT_EQ(report.restarted_at, 160'000);
  EXPECT_GE(report.catchup_done_at, report.restarted_at);
  EXPECT_GT(report.catchup_msets, 0)
      << "updates submitted during the outage arrive via catch-up or "
         "queued delivery; at least the lost unflushed tail comes from peers";
  // Post-recovery strict query at the recovered site reads the 1SR value.
  auto values = RunQuery(system, 2, /*epsilon=*/0, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 12);
}

TEST(RecoveryIntegrationTest, CheckpointsBoundWalSizeAndReplayWork) {
  auto run = [](SimDuration checkpoint_interval_us) {
    SystemConfig config = CrashConfig(Method::kCommu, 103);
    config.recovery.checkpoint_interval_us = checkpoint_interval_us;
    ReplicatedSystem system(config);
    system.failures().ScheduleCrash(kAmnesia);
    for (int i = 0; i < 20; ++i) {
      MustSubmit(system, i % 2, {Operation::Increment(0, 1)});
      system.RunFor(10'000);
    }
    system.RunUntilQuiescent();
    EXPECT_TRUE(system.Converged());
    EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 20);
    recovery::Wal& wal = system.recovery_manager()->site(0)->wal();
    wal.Flush();
    const auto& report = system.recovery_manager()->last_report(2);
    return std::make_tuple(wal.StorageBytes(), report.had_checkpoint,
                           report.replayed_records);
  };
  const auto [bytes_with, ckpt_with, replayed_with] = run(20'000);
  const auto [bytes_without, ckpt_without, replayed_without] = run(0);
  EXPECT_TRUE(ckpt_with);
  EXPECT_FALSE(ckpt_without);
  EXPECT_LT(bytes_with, bytes_without)
      << "checkpointing truncates the stable prefix out of the WAL";
  EXPECT_LE(replayed_with, replayed_without);
}

TEST(RecoveryIntegrationTest, CompeReconcilesUndecidedAppliesOnReplay) {
  // Site 2 optimistically applies tentative increments, then crashes with
  // some decisions undelivered. On replay it must reconcile the logged
  // decisions and pick up the rest via catch-up: committed deltas survive,
  // aborted ones are compensated away.
  SystemConfig config = CrashConfig(Method::kCompe, 105);
  ReplicatedSystem system(config);
  std::vector<EtId> ets;
  for (int i = 0; i < 6; ++i) {
    ets.push_back(
        MustSubmit(system, 0, {Operation::Increment(0, 1 << i)}));
    system.RunFor(5'000);
  }
  system.RunUntilQuiescent();  // all applied tentatively everywhere
  // Decide half before the crash (logged at site 2), half while it's down
  // (arrives after recovery via queued delivery / catch-up).
  ASSERT_TRUE(system.Decide(ets[0], true).ok());
  ASSERT_TRUE(system.Decide(ets[1], false).ok());
  system.RunFor(10'000);
  system.failures().ScheduleCrash(
      sim::CrashSpec{2, system.simulator().Now() + 1'000,
                     system.simulator().Now() + 80'000, /*amnesia=*/true});
  system.RunFor(20'000);  // crash has hit
  ASSERT_TRUE(system.Decide(ets[2], true).ok());
  ASSERT_TRUE(system.Decide(ets[3], false).ok());
  ASSERT_TRUE(system.Decide(ets[4], false).ok());
  ASSERT_TRUE(system.Decide(ets[5], true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  const int64_t expected = (1 << 0) + (1 << 2) + (1 << 5);
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), expected);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), expected);
}

TEST(RecoveryIntegrationTest, CompeOrdCrashDuringCompensationRecovers) {
  // The general compensation path: abort of a non-tail record rolls back
  // the MsetLog suffix and replays it. Site 2 processes one such rollback,
  // crashes with amnesia (the rollback must be redone from the WAL-logged
  // decision on the restored log), and a second abort lands while it is
  // down. W1..W4 write 10,20,30,40 over one object; aborting W2 and W4
  // leaves W3's value, 30, everywhere.
  SystemConfig config = CrashConfig(Method::kCompeOrdered, 107);
  ReplicatedSystem system(config);
  std::vector<EtId> ets;
  for (int i = 1; i <= 4; ++i) {
    ets.push_back(MustSubmit(
        system, 0, {Operation::Write(0, Value(int64_t{10 * i}))}));
    system.RunFor(5'000);
  }
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(ets[0], true).ok());
  ASSERT_TRUE(system.Decide(ets[1], false).ok());  // non-tail: general path
  system.RunFor(15'000);  // rollback processed (and WAL-flushed) everywhere
  EXPECT_GE(system.site_mset_log(2).stats().general_rollbacks, 1);
  system.failures().ScheduleCrash(
      sim::CrashSpec{2, system.simulator().Now() + 1'000,
                     system.simulator().Now() + 90'000, /*amnesia=*/true});
  system.RunFor(20'000);
  ASSERT_TRUE(system.Decide(ets[3], false).ok());  // while site 2 is down
  ASSERT_TRUE(system.Decide(ets[2], true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 30);
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), 30);
  // The recovered site redid the general rollback on its restored log.
  EXPECT_GE(system.site_mset_log(2).stats().general_rollbacks, 1);
}

TEST(RecoveryIntegrationTest, FileBackedStorageRecovers) {
  const std::string dir = "recovery_itest_storage";
  std::filesystem::remove_all(dir);
  SystemConfig config = CrashConfig(Method::kCommu, 109);
  config.recovery.backend = recovery::StorageBackendKind::kFile;
  config.recovery.dir = dir;
  const WorkloadResult crashed = RunCounterWorkload(config, /*crash=*/true);
  EXPECT_TRUE(crashed.converged);
  EXPECT_EQ(crashed.value0, 12);
  EXPECT_EQ(crashed.value1, 66);
  EXPECT_TRUE(std::filesystem::exists(dir + "/site_2.wal"));
  std::filesystem::remove_all(dir);
}

TEST(RecoveryIntegrationTest, AbortDecidedJustBeforeCrashSurvivesTruncation) {
  // The lost-abort scenario: site 2 applies two tentative increments, both
  // reflected in its 20ms checkpoint. The decisions (commit `keep`, abort
  // `gone`) arrive and are acked just before its amnesia crash, so the
  // reliable queues never redeliver them — and with the lazy group commit
  // below they die in the unflushed WAL tail. During the long outage the
  // peers checkpoint many times; if those checkpoints truncated the
  // decision records, catch-up (which serves decisions from peer WALs)
  // could never re-supply the abort, and the recovered site would re-arm
  // `gone` tentatively forever: value 107 instead of 100, divergence.
  SystemConfig config = CrashConfig(Method::kCompe, 113);
  config.recovery.checkpoint_interval_us = 20'000;
  config.recovery.group_commit_records = 1024;
  config.recovery.group_commit_interval_us = 1'000'000;
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(
      sim::CrashSpec{2, /*crash_at=*/38'000, /*restart_at=*/150'000,
                     /*amnesia=*/true});
  const EtId keep =
      MustSubmit(system, 0, {Operation::Increment(0, 100)});
  const EtId gone = MustSubmit(system, 0, {Operation::Increment(0, 7)});
  system.RunFor(25'000);  // applied tentatively everywhere; ckpt at 20ms
  ASSERT_TRUE(system.Decide(keep, true).ok());
  ASSERT_TRUE(system.Decide(gone, false).ok());
  system.RunFor(10'000);   // decisions delivered + acked; crash at 38ms
  system.RunFor(110'000);  // peers checkpoint through the outage
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 100);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 100);
  EXPECT_FALSE(system.site_mset_log(2).Contains(gone))
      << "the recovered site never compensated the aborted update";
}

TEST(RecoveryIntegrationTest, CatchupCompletesWhileAPeerStaysDown) {
  // Site 1 fail-stops and never comes back; site 2 amnesia-crashes through
  // the usual window. Catch-up must complete with only site 0 responding —
  // counting the dead peer would park every foreground delivery at site 2
  // forever. RunFor horizons only: the reliable queues keep retrying the
  // dead site, so the event queue never drains.
  SystemConfig config = CrashConfig(Method::kCommu, 115);
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(
      sim::CrashSpec{1, /*crash_at=*/20'000, /*restart_at=*/kSimTimeMax,
                     /*amnesia=*/false});
  system.failures().ScheduleCrash(kAmnesia);
  for (int i = 0; i < 12; ++i) {
    MustSubmit(system, 0, {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  system.RunFor(300'000);
  EXPECT_GE(system.recovery_manager()->last_report(2).catchup_done_at, 0)
      << "catch-up still waiting on the dead peer";
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 12);
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 12);
}

TEST(RecoveryIntegrationTest, AbortedMsetsAreTruncatedFromWals) {
  // Aborted ETs never become stable, so the stability-gated truncation
  // rule alone would pin them (and their decisions) in every WAL forever.
  // After the compensations are reflected in checkpoints everywhere, a few
  // more rounds must drain both the MSet records and, once no WAL can
  // re-arm the ETs, the abort decisions.
  SystemConfig config = CrashConfig(Method::kCompe, 117);
  config.recovery.checkpoint_interval_us = 20'000;
  ReplicatedSystem system(config);
  std::vector<EtId> ets;
  for (int i = 0; i < 6; ++i) {
    ets.push_back(MustSubmit(system, i % 2, {Operation::Increment(0, 1)}));
    system.RunFor(10'000);
    ASSERT_TRUE(system.Decide(ets.back(), false).ok());
    system.RunFor(5'000);
  }
  system.RunFor(100'000);  // >= 5 checkpoint rounds past the last abort
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(0, 0).AsInt(), 0);
  for (SiteId s = 0; s < 3; ++s) {
    for (const recovery::WalRecord& record :
         system.recovery_manager()->site(s)->wal().ReadAll()) {
      EXPECT_NE(record.type, recovery::WalRecordType::kMset)
          << "aborted MSet pinned in site " << s << "'s WAL";
      EXPECT_NE(record.type, recovery::WalRecordType::kDecision)
          << "decision for a fully-truncated ET pinned in site " << s
          << "'s WAL";
    }
  }
}

TEST(RecoveryIntegrationTest, SubmitAtDownSiteIsRejected) {
  SystemConfig config = CrashConfig(Method::kCommu, 111);
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(kAmnesia);
  system.RunFor(30'000);  // inside the down window
  auto result = system.SubmitUpdate(2, {Operation::Increment(0, 1)});
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

}  // namespace
}  // namespace esr::core
