// Unit tests for the durability subsystem: CRC-framed codec, the per-site
// WAL with group commit, the storage backends, and checkpoint
// encode/decode. Integration with the replica control methods lives in
// recovery_integration_test.cpp.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "recovery/checkpointer.h"
#include "recovery/codec.h"
#include "recovery/recovery_manager.h"
#include "recovery/storage.h"
#include "recovery/wal.h"
#include "sim/simulator.h"

namespace esr::recovery {
namespace {

core::Mset SampleMset(EtId et, SiteId origin) {
  core::Mset mset;
  mset.et = et;
  mset.origin = origin;
  mset.global_order = 7;
  mset.timestamp = LamportTimestamp{42, origin};
  mset.operations = {store::Operation::Increment(3, 5),
                     store::Operation::Write(4, Value(int64_t{9}))};
  mset.tentative = true;
  return mset;
}

TEST(CodecTest, ScalarAndCompositeRoundtrip) {
  Encoder enc;
  enc.U8(250);
  enc.U32(0xDEADBEEFu);
  enc.U64(0x0123456789ABCDEFull);
  enc.I64(-77);
  enc.Str("hello wal");
  enc.Ts(LamportTimestamp{9, 2});
  enc.Val(Value(int64_t{-3}));
  enc.MsetRec(SampleMset(11, 1));
  const std::string bytes = enc.Take();

  Decoder dec(bytes);
  EXPECT_EQ(dec.U8(), 250);
  EXPECT_EQ(dec.U32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.I64(), -77);
  EXPECT_EQ(dec.Str(), "hello wal");
  const LamportTimestamp ts = dec.Ts();
  EXPECT_EQ(ts.counter, 9);
  EXPECT_EQ(ts.site, 2);
  EXPECT_EQ(dec.Val().AsInt(), -3);
  const core::Mset mset = dec.MsetRec();
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_EQ(mset.et, 11);
  EXPECT_EQ(mset.origin, 1);
  EXPECT_EQ(mset.global_order, 7);
  ASSERT_EQ(mset.operations.size(), 2u);
  EXPECT_TRUE(mset.tentative);
}

TEST(CodecTest, DecoderLatchesOnTruncatedInput) {
  Encoder enc;
  enc.U64(123);
  std::string bytes = enc.Take();
  bytes.resize(bytes.size() - 1);
  Decoder dec(bytes);
  dec.U64();
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.U32(), 0u) << "getters return defaults once latched";
}

TEST(CodecTest, FramingStopsAtTornAndCorruptFrames) {
  std::string log;
  FrameAppend(log, "alpha");
  FrameAppend(log, "beta");
  FrameAppend(log, "gamma");

  size_t pos = 0;
  std::string_view payload;
  ASSERT_TRUE(FrameNext(log, &pos, &payload));
  EXPECT_EQ(payload, "alpha");
  ASSERT_TRUE(FrameNext(log, &pos, &payload));
  EXPECT_EQ(payload, "beta");
  ASSERT_TRUE(FrameNext(log, &pos, &payload));
  EXPECT_EQ(payload, "gamma");
  EXPECT_FALSE(FrameNext(log, &pos, &payload)) << "clean end of log";

  // Torn tail: the last frame lost bytes in the crash.
  std::string torn = log.substr(0, log.size() - 3);
  pos = 0;
  ASSERT_TRUE(FrameNext(torn, &pos, &payload));
  ASSERT_TRUE(FrameNext(torn, &pos, &payload));
  EXPECT_FALSE(FrameNext(torn, &pos, &payload)) << "torn frame rejected";

  // Bit flip inside the second frame's payload: CRC must catch it.
  std::string corrupt = log;
  corrupt[8 + 5 + 8 + 2] ^= 0x40;  // inside "beta"'s payload
  pos = 0;
  ASSERT_TRUE(FrameNext(corrupt, &pos, &payload));
  EXPECT_EQ(payload, "alpha");
  EXPECT_FALSE(FrameNext(corrupt, &pos, &payload)) << "CRC mismatch stops";
}

TEST(CodecTest, Crc32DetectsChanges) {
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
  EXPECT_EQ(Crc32("abc"), Crc32("abc"));
  EXPECT_NE(Crc32(""), Crc32("a"));
}

class WalTest : public ::testing::Test {
 protected:
  RecoveryConfig Config(int batch, SimDuration timer_us) {
    RecoveryConfig config;
    config.enabled = true;
    config.group_commit_records = batch;
    config.group_commit_interval_us = timer_us;
    return config;
  }

  sim::Simulator sim_;
  obs::MetricRegistry metrics_;
  MemoryStorage storage_;
};

TEST_F(WalTest, GroupCommitFlushesAtBatchSize) {
  Wal wal(&sim_, &storage_, 0, Config(3, 1'000'000), &metrics_);
  wal.AppendMset(SampleMset(1, 0));
  wal.AppendMset(SampleMset(2, 0));
  EXPECT_EQ(wal.UnflushedCount(), 2);
  EXPECT_TRUE(wal.ReadAll().empty()) << "buffered tail not durable yet";
  wal.AppendMset(SampleMset(3, 0));  // hits the batch size
  EXPECT_EQ(wal.UnflushedCount(), 0);
  const std::vector<WalRecord> records = wal.ReadAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 1);
  EXPECT_EQ(records[2].lsn, 3);
  EXPECT_EQ(records[2].mset.et, 3);
}

TEST_F(WalTest, GroupCommitTimerFlushesSmallBatches) {
  Wal wal(&sim_, &storage_, 0, Config(64, 5'000), &metrics_);
  wal.AppendAck(9, 1);
  EXPECT_EQ(wal.UnflushedCount(), 1);
  sim_.RunUntil(10'000);
  EXPECT_EQ(wal.UnflushedCount(), 0) << "timer flushed the lone record";
  const std::vector<WalRecord> records = wal.ReadAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kAck);
  EXPECT_EQ(records[0].et, 9);
  EXPECT_EQ(records[0].replica, 1);
}

TEST_F(WalTest, DropUnflushedModelsAmnesiaDataLoss) {
  Wal wal(&sim_, &storage_, 0, Config(4, 1'000'000), &metrics_);
  wal.AppendMset(SampleMset(1, 0));
  wal.AppendMset(SampleMset(2, 0));
  wal.Flush();
  wal.AppendDecision(2, true);  // stays in the volatile tail
  EXPECT_EQ(wal.UnflushedCount(), 1);
  wal.DropUnflushed();
  EXPECT_EQ(wal.UnflushedCount(), 0);
  const std::vector<WalRecord> records = wal.ReadAll();
  ASSERT_EQ(records.size(), 2u) << "only the flushed prefix survives";
  EXPECT_EQ(records[1].mset.et, 2);
  // LSNs keep advancing past the hole left by the dropped record.
  EXPECT_GE(wal.next_lsn(), 4);
}

TEST_F(WalTest, TruncatePreservesLsnsOfKeptRecords) {
  Wal wal(&sim_, &storage_, 0, Config(1, 1'000'000), &metrics_);
  for (EtId et = 1; et <= 5; ++et) wal.AppendMset(SampleMset(et, 0));
  const int64_t before_bytes = wal.StorageBytes();
  const int64_t dropped =
      wal.Truncate([](const WalRecord& rec) { return rec.lsn > 2; });
  EXPECT_EQ(dropped, 2);
  EXPECT_LT(wal.StorageBytes(), before_bytes);
  const std::vector<WalRecord> records = wal.ReadAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 3);
  EXPECT_EQ(records[2].lsn, 5);
  EXPECT_EQ(wal.next_lsn(), 6) << "truncation never reuses LSNs";
}

TEST_F(WalTest, AllRecordTypesRoundtrip) {
  Wal wal(&sim_, &storage_, 0, Config(1, 1'000'000), &metrics_);
  wal.AppendMset(SampleMset(1, 2));
  wal.AppendDecision(1, false);
  wal.AppendAck(1, 2);
  wal.AppendStable(1, LamportTimestamp{5, 2});
  const std::vector<WalRecord> records = wal.ReadAll();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, WalRecordType::kMset);
  EXPECT_EQ(records[1].type, WalRecordType::kDecision);
  EXPECT_FALSE(records[1].commit);
  EXPECT_EQ(records[2].type, WalRecordType::kAck);
  EXPECT_EQ(records[2].replica, 2);
  EXPECT_EQ(records[3].type, WalRecordType::kStable);
  EXPECT_EQ(records[3].ts.counter, 5);
}

TEST(StorageTest, MemoryBackendIsolatesSites) {
  MemoryStorage storage;
  storage.AppendWal(0, "aa");
  storage.AppendWal(0, "bb");
  storage.AppendWal(1, "cc");
  EXPECT_EQ(storage.ReadWal(0), "aabb");
  EXPECT_EQ(storage.ReadWal(1), "cc");
  EXPECT_EQ(storage.ReadWal(2), "");
  storage.ReplaceWal(0, "zz");
  EXPECT_EQ(storage.ReadWal(0), "zz");
  EXPECT_EQ(storage.ReadCheckpoint(0), "");
  storage.WriteCheckpoint(0, "ck1");
  storage.WriteCheckpoint(0, "ck2");
  EXPECT_EQ(storage.ReadCheckpoint(0), "ck2") << "checkpoint is replaced";
}

TEST(StorageTest, FileBackendPersistsAcrossInstances) {
  const std::string dir = "recovery_test_storage";
  std::filesystem::remove_all(dir);
  {
    FileStorage storage(dir);
    storage.AppendWal(3, "wal-bytes");
    storage.WriteCheckpoint(3, "ckpt-bytes");
  }
  {
    // A second instance over the same directory models a process restart.
    FileStorage storage(dir);
    EXPECT_EQ(storage.ReadWal(3), "wal-bytes");
    EXPECT_EQ(storage.ReadCheckpoint(3), "ckpt-bytes");
    storage.ReplaceWal(3, "short");
    EXPECT_EQ(storage.ReadWal(3), "short");
  }
  std::filesystem::remove_all(dir);
}

CheckpointData SampleCheckpoint() {
  CheckpointData data;
  data.last_lsn = 17;
  data.clock_counter = 99;
  data.order_watermark = 6;
  data.applied = {LamportTimestamp{4, 0}, LamportTimestamp{9, 1}};
  data.store_entries.emplace_back(1, Value(int64_t{10}),
                                  LamportTimestamp{3, 0});
  data.versions.emplace_back(1, LamportTimestamp{3, 0}, Value(int64_t{10}));
  store::MsetLog::RecordSnapshot rec;
  rec.mset_id = 8;
  rec.ops = {store::Operation::Increment(1, 2)};
  rec.before_images.emplace_back(1, Value(int64_t{8}));
  data.mset_log.push_back(std::move(rec));
  data.shard_watermarks = {{0, 5}, {2, 11}};
  data.shard_seq_floors = {{0, 6, 2}, {2, 12, 3}};
  data.method_blob = "method";
  data.stability_blob = "stability";
  return data;
}

TEST(CheckpointTest, EncodeDecodeRoundtrip) {
  const std::string bytes = EncodeCheckpoint(SampleCheckpoint());
  CheckpointData out;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &out));
  EXPECT_EQ(out.last_lsn, 17);
  EXPECT_EQ(out.clock_counter, 99);
  EXPECT_EQ(out.order_watermark, 6);
  ASSERT_EQ(out.applied.size(), 2u);
  EXPECT_EQ(out.applied[1].counter, 9);
  ASSERT_EQ(out.store_entries.size(), 1u);
  EXPECT_EQ(std::get<1>(out.store_entries[0]).AsInt(), 10);
  ASSERT_EQ(out.versions.size(), 1u);
  ASSERT_EQ(out.mset_log.size(), 1u);
  EXPECT_EQ(out.mset_log[0].mset_id, 8);
  ASSERT_EQ(out.mset_log[0].before_images.size(), 1u);
  ASSERT_EQ(out.shard_watermarks.size(), 2u);
  EXPECT_EQ(out.shard_watermarks[1], (std::pair<ShardId, SequenceNumber>{2, 11}));
  ASSERT_EQ(out.shard_seq_floors.size(), 2u);
  EXPECT_EQ(out.shard_seq_floors[0],
            (std::tuple<ShardId, SequenceNumber, int64_t>{0, 6, 2}));
  EXPECT_EQ(out.shard_seq_floors[1],
            (std::tuple<ShardId, SequenceNumber, int64_t>{2, 12, 3}));
  EXPECT_EQ(out.method_blob, "method");
  EXPECT_EQ(out.stability_blob, "stability");
}

TEST(CheckpointTest, RejectsEmptyTornAndCorruptBytes) {
  const std::string bytes = EncodeCheckpoint(SampleCheckpoint());
  CheckpointData out;
  EXPECT_FALSE(DecodeCheckpoint("", &out));
  EXPECT_FALSE(DecodeCheckpoint(bytes.substr(0, bytes.size() / 2), &out));
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x01;
  EXPECT_FALSE(DecodeCheckpoint(corrupt, &out));
  EXPECT_FALSE(DecodeCheckpoint("garbage-not-a-checkpoint", &out));
}

// Catch-up exchange lifecycle and WAL truncation policy, exercised against
// a bare RecoveryManager with recording stub bindings (no methods, no
// network). The full-stack versions live in recovery_integration_test.cpp.
class RecoveryManagerTest : public ::testing::Test {
 protected:
  static RecoveryConfig ManagerConfig() {
    RecoveryConfig config;
    config.enabled = true;
    // Batch size 1: every append is durable immediately, so the truncation
    // tests see a deterministic WAL without pumping the group-commit timer.
    config.group_commit_records = 1;
    config.group_commit_interval_us = 1'000;
    return config;
  }

  static core::Mset UnorderedMset(EtId et, SiteId origin, int64_t counter) {
    core::Mset mset;
    mset.et = et;
    mset.origin = origin;
    mset.global_order = 0;
    mset.timestamp = LamportTimestamp{counter, origin};
    mset.operations = {store::Operation::Increment(0, 1)};
    mset.tentative = true;
    return mset;
  }

  void BindRecording(SiteId s) {
    SiteBindings b;
    b.snapshot = [](CheckpointData&) {};
    b.restore = [](const CheckpointData&) {};
    b.deliver = [this, s](const core::Mset& mset) {
      delivered_[static_cast<size_t>(s)].push_back(mset.et);
    };
    b.replay_reflected = [](const core::Mset&) {};
    b.decide = [](EtId, bool) {};
    b.ack = [](EtId, SiteId) {};
    b.stable = [](EtId, const LamportTimestamp&) {};
    b.is_stable = [](EtId) { return false; };
    manager_.BindSite(s, std::move(b));
  }

  int64_t CounterValue(const std::string& name, SiteId s) {
    return metrics_.GetCounter(name, {{"site", std::to_string(s)}}).value();
  }

  sim::Simulator sim_;
  obs::MetricRegistry metrics_;
  RecoveryManager manager_{&sim_, &metrics_, ManagerConfig(), 3};
  std::vector<std::vector<EtId>> delivered_{3};
};

TEST_F(RecoveryManagerTest, StaleCatchupResponseIsIgnored) {
  BindRecording(0);
  // First exchange, abandoned by a second crash before any response lands.
  const CatchupRequest r1 = manager_.BuildCatchupRequest(0);
  manager_.BeginCatchup(0, {1, 2});
  manager_.OnCrash(0);
  // Second exchange: a fresh restart, new id.
  const CatchupRequest r2 = manager_.BuildCatchupRequest(0);
  manager_.BeginCatchup(0, {1, 2});
  ASSERT_GT(r2.exchange, r1.exchange);

  // A response to the abandoned exchange arrives late (the reliable queues
  // retained it). It must not count toward the new exchange.
  CatchupResponse stale;
  stale.from = 1;
  stale.exchange = r1.exchange;
  manager_.ApplyCatchupResponse(0, stale);
  CatchupResponse stale2;
  stale2.from = 2;
  stale2.exchange = r1.exchange;
  manager_.ApplyCatchupResponse(0, stale2);
  EXPECT_EQ(manager_.last_report(0).catchup_done_at, -1)
      << "stale responses completed the new exchange";
  EXPECT_EQ(CounterValue("esr_recovery_stale_catchup_total", 0), 2);

  // The real responses complete it; a duplicate does not double-complete.
  CatchupResponse fresh1;
  fresh1.from = 1;
  fresh1.exchange = r2.exchange;
  manager_.ApplyCatchupResponse(0, fresh1);
  manager_.ApplyCatchupResponse(0, fresh1);
  EXPECT_EQ(manager_.last_report(0).catchup_done_at, -1);
  CatchupResponse fresh2;
  fresh2.from = 2;
  fresh2.exchange = r2.exchange;
  manager_.ApplyCatchupResponse(0, fresh2);
  EXPECT_GE(manager_.last_report(0).catchup_done_at, 0);
}

TEST_F(RecoveryManagerTest, PeerDownCompletesCatchupAndReleasesHeld) {
  BindRecording(0);
  const CatchupRequest request = manager_.BuildCatchupRequest(0);
  manager_.BeginCatchup(0, {1, 2});

  // Foreground delivery parked while the exchange is in flight.
  EXPECT_TRUE(manager_.site(0)->MaybeHoldDelivery(UnorderedMset(7, 1, 5)));
  EXPECT_TRUE(delivered_[0].empty());

  // Peer 2 crashes mid-exchange: it stops counting as an expected
  // responder, so peer 1's response alone completes the exchange and the
  // parked delivery is released.
  manager_.OnPeerDown(2);
  EXPECT_EQ(manager_.last_report(0).catchup_done_at, -1);
  CatchupResponse resp;
  resp.from = 1;
  resp.exchange = request.exchange;
  manager_.ApplyCatchupResponse(0, resp);
  EXPECT_GE(manager_.last_report(0).catchup_done_at, 0);
  ASSERT_EQ(delivered_[0].size(), 1u);
  EXPECT_EQ(delivered_[0][0], 7);
  EXPECT_EQ(CounterValue("esr_recovery_catchup_peer_skipped_total", 0), 1);

  // With every peer down the exchange completes immediately.
  BindRecording(1);
  manager_.BuildCatchupRequest(1);
  manager_.BeginCatchup(1, {0, 2});
  manager_.OnPeerDown(0);
  EXPECT_EQ(manager_.last_report(1).catchup_done_at, -1);
  manager_.OnPeerDown(2);
  EXPECT_GE(manager_.last_report(1).catchup_done_at, 0);
}

TEST_F(RecoveryManagerTest, AbortDecisionRetainedWhileAnyWalHoldsTheMset) {
  // Every site logged the tentative MSet (et=5) and its abort decision; the
  // compensation already ran, so checkpoints contain neither (the stub
  // snapshot leaves the MSet log empty) and is_stable stays false forever.
  const core::Mset mset = UnorderedMset(5, 0, 10);
  for (SiteId s = 0; s < 3; ++s) {
    BindRecording(s);
    manager_.site(s)->LogMset(mset);
    manager_.site(s)->LogDecision(5, /*commit=*/false);
    manager_.site(s)->OnApplied(mset);
  }

  // Round 1: each site drops its aborted MSet (abort logged + compensation
  // reflected) but must keep the decision — some OTHER WAL still holds the
  // MSet while this site checkpoints, and until the last one drops it a
  // recovering site could re-arm the tentative apply and need the abort.
  for (SiteId s = 0; s < 3; ++s) {
    manager_.TakeCheckpoint(s);
    std::vector<WalRecord> records = manager_.site(s)->wal().ReadAll();
    ASSERT_EQ(records.size(), 1u) << "site " << s;
    EXPECT_EQ(records[0].type, WalRecordType::kDecision) << "site " << s;
    EXPECT_EQ(records[0].et, 5) << "site " << s;
    EXPECT_FALSE(records[0].commit) << "site " << s;
  }

  // Round 2: no durable state anywhere can reconstruct et=5 tentatively,
  // so the decisions prune too — aborted work does not pin the WAL.
  for (SiteId s = 0; s < 3; ++s) {
    manager_.TakeCheckpoint(s);
    EXPECT_TRUE(manager_.site(s)->wal().ReadAll().empty()) << "site " << s;
  }
}

}  // namespace
}  // namespace esr::recovery
