#include "esr/replicated_system.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

TEST(ReplicatedSystemTest, MethodNamesExposed) {
  EXPECT_EQ(MethodToString(Method::kOrdup), "ORDUP");
  EXPECT_EQ(MethodToString(Method::kOrdupTs), "ORDUP-TS");
  EXPECT_EQ(MethodToString(Method::kCommu), "COMMU");
  EXPECT_EQ(MethodToString(Method::kRituMulti), "RITU-MV");
  EXPECT_EQ(MethodToString(Method::kRituSingle), "RITU-SV");
  EXPECT_EQ(MethodToString(Method::kCompe), "COMPE");
  EXPECT_EQ(MethodToString(Method::kCompeOrdered), "COMPE-ORD");
  EXPECT_EQ(MethodToString(Method::kSync2pc), "SYNC-2PC");
  EXPECT_EQ(MethodToString(Method::kSyncQuorum), "SYNC-QUORUM");
}

TEST(ReplicatedSystemTest, InvalidSiteRejected) {
  ReplicatedSystem system(Config(Method::kCommu));
  EXPECT_FALSE(system.SubmitUpdate(7, {Operation::Increment(0, 1)}).ok());
  EXPECT_FALSE(system.SubmitUpdate(-1, {Operation::Increment(0, 1)}).ok());
}

TEST(ReplicatedSystemTest, UnknownQueryHandled) {
  ReplicatedSystem system(Config(Method::kCommu));
  EXPECT_TRUE(system.TryRead(999, 0).status().IsNotFound());
  EXPECT_TRUE(system.EndQuery(999).IsNotFound());
  EXPECT_EQ(system.query_state(999), nullptr);
  bool called = false;
  system.Read(999, 0, [&](Result<Value> v) {
    called = true;
    EXPECT_FALSE(v.ok());
  });
  EXPECT_TRUE(called);
}

TEST(ReplicatedSystemTest, EtIdsAreUnique) {
  ReplicatedSystem system(Config(Method::kCommu));
  EtId a = MustSubmit(system, 0, {Operation::Increment(0, 1)});
  EtId q = system.BeginQuery(1, 0);
  EtId b = MustSubmit(system, 2, {Operation::Increment(0, 1)});
  EXPECT_NE(a, q);
  EXPECT_NE(a, b);
  EXPECT_NE(q, b);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(ReplicatedSystemTest, Sync2pcUpdateAndRead) {
  ReplicatedSystem system(Config(Method::kSync2pc));
  Status committed = Status::Internal("pending");
  MustSubmit(system, 0, {Operation::Increment(0, 6)},
             [&](Status s) { committed = s; });
  system.RunUntilQuiescent();
  ASSERT_TRUE(committed.ok());
  EXPECT_TRUE(system.Converged());
  auto values = RunQuery(system, 2, 0, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 6);
}

TEST(ReplicatedSystemTest, Sync2pcCommitWaitsForAllSites) {
  auto config = Config(Method::kSync2pc);
  config.network.base_latency_us = 25'000;
  config.network.jitter_us = 0;
  ReplicatedSystem system(config);
  SimTime committed_at = -1;
  MustSubmit(system, 0, {Operation::Increment(0, 1)},
             [&](Status) { committed_at = system.simulator().Now(); });
  system.RunUntilQuiescent();
  // prepare + vote + decide + ack = 4 one-way hops minimum.
  EXPECT_GE(committed_at, 4 * 25'000);
}

TEST(ReplicatedSystemTest, SyncQuorumUpdateAndRead) {
  ReplicatedSystem system(Config(Method::kSyncQuorum, 5));
  Status committed = Status::Internal("pending");
  MustSubmit(system, 1, {Operation::Increment(3, 4)},
             [&](Status s) { committed = s; });
  system.RunUntilQuiescent();
  ASSERT_TRUE(committed.ok());
  auto values = RunQuery(system, 4, 0, {3});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 4);
}

TEST(ReplicatedSystemTest, TryReadUnsupportedForSyncMethods) {
  ReplicatedSystem system(Config(Method::kSync2pc));
  EtId q = system.BeginQuery(0, 0);
  EXPECT_FALSE(system.TryRead(q, 0).ok());
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(ReplicatedSystemTest, AsyncCommitFasterThanSyncOnSlowNetwork) {
  auto make = [](Method m) {
    auto config = Config(m);
    config.network.base_latency_us = 100'000;  // 100 ms WAN
    config.network.jitter_us = 0;
    return config;
  };
  SimTime async_commit = -1, sync_commit = -1;
  {
    ReplicatedSystem system(make(Method::kCommu));
    MustSubmit(system, 0, {Operation::Increment(0, 1)},
               [&](Status) { async_commit = system.simulator().Now(); });
    system.RunUntilQuiescent();
  }
  {
    ReplicatedSystem system(make(Method::kSync2pc));
    MustSubmit(system, 0, {Operation::Increment(0, 1)},
               [&](Status) { sync_commit = system.simulator().Now(); });
    system.RunUntilQuiescent();
  }
  EXPECT_EQ(async_commit, 0) << "COMMU commits locally, instantly";
  EXPECT_GE(sync_commit, 400'000) << "2PC pays four WAN hops";
}

TEST(ReplicatedSystemTest, HistoryRecordsUpdatesAppliesAndReads) {
  ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  RunQuery(system, 1, kUnboundedEpsilon, {0});
  const auto& h = system.history();
  EXPECT_EQ(h.updates().size(), 1u);
  EXPECT_EQ(h.ApplyCount(h.updates()[0].et), 3);
  EXPECT_EQ(h.reads().size(), 1u);
  EXPECT_EQ(h.queries().size(), 1u);
}

TEST(ReplicatedSystemTest, RecordHistoryOffKeepsHistoryEmpty) {
  auto config = Config(Method::kCommu);
  config.record_history = false;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.history().updates().empty());
  EXPECT_TRUE(system.Converged());
}

TEST(ReplicatedSystemTest, CountersAccumulateProtocolEvents) {
  ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  EXPECT_EQ(system.counters().Get("esr.updates_committed"), 1);
  EXPECT_EQ(system.counters().Get("esr.msets_applied"), 3);
  EXPECT_EQ(system.counters().Get("esr.stable"), 1);
}

TEST(ReplicatedSystemTest, SingleSiteSystemWorks) {
  ReplicatedSystem system(Config(Method::kOrdup, /*num_sites=*/1));
  MustSubmit(system, 0, {Operation::Increment(0, 2)});
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  auto values = RunQuery(system, 0, 0, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 2);
}

TEST(ReplicatedSystemTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](uint64_t seed) {
    auto config = Config(Method::kCommu, 3, seed);
    config.network.jitter_us = 2'000;
    ReplicatedSystem system(config);
    for (int i = 0; i < 10; ++i) {
      MustSubmit(system, i % 3, {Operation::Increment(i % 2, 1)});
    }
    system.RunUntilQuiescent();
    return std::make_pair(system.SiteDigest(0),
                          system.counters().Get("esr.msets_applied"));
  };
  EXPECT_EQ(run(99), run(99));
}

}  // namespace
}  // namespace esr::core
