#include "esr/ritu.h"

#include <gtest/gtest.h>

#include "analysis/query_checker.h"
#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

Operation Tsw(ObjectId object, int64_t value) {
  // Timestamp is stamped by the method at submit time.
  return Operation::TimestampedWrite(object, Value(value), kZeroTimestamp);
}

TEST(RituTest, AdmitsOnlyTimestampedWrites) {
  ReplicatedSystem system(Config(Method::kRituMulti));
  EXPECT_TRUE(system.SubmitUpdate(0, {Tsw(0, 1)}).ok());
  EXPECT_FALSE(system.SubmitUpdate(0, {Operation::Increment(1, 1)}).ok());
  EXPECT_FALSE(
      system.SubmitUpdate(0, {Operation::Write(2, Value(int64_t{1}))}).ok());
}

TEST(RituTest, MultiVersionAppendsVersions) {
  ReplicatedSystem system(Config(Method::kRituMulti));
  MustSubmit(system, 0, {Tsw(0, 10)});
  MustSubmit(system, 1, {Tsw(0, 20)});
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.site_versions(s).VersionCount(0), 2) << "site " << s;
  }
}

TEST(RituTest, SingleVersionConvergesViaThomasRule) {
  auto config = Config(Method::kRituSingle, 4, 31);
  config.network.jitter_us = 6'000;
  config.queue.fifo = false;
  ReplicatedSystem system(config);
  for (int i = 0; i < 20; ++i) {
    MustSubmit(system, i % 4, {Tsw(0, 100 + i)});
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  // The survivor is the write with the highest Lamport timestamp — which is
  // a value some site wrote (sanity).
  const int64_t v = system.SiteValue(0, 0).AsInt();
  EXPECT_GE(v, 100);
  EXPECT_LT(v, 120);
}

TEST(RituTest, LatestReadCostsOneUnitBeyondVtnc) {
  auto config = Config(Method::kRituMulti);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Tsw(0, 7)});
  // Immediately: the update is not yet stable, so it is above the VTNC.
  const EtId q = system.BeginQuery(0, /*epsilon=*/5);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7) << "fresh version readable within budget";
  EXPECT_EQ(system.query_state(q)->inconsistency, 1);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(RituTest, EpsilonZeroFallsBackToVtncSnapshot) {
  auto config = Config(Method::kRituMulti);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Tsw(0, 7)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/0);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value()) << "snapshot below VTNC predates the update";
  EXPECT_EQ(system.query_state(q)->inconsistency, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());

  // After stabilization the VTNC advances past the write and strict
  // queries see it.
  system.RunUntilQuiescent();
  auto values = RunQuery(system, 1, /*epsilon=*/0, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 7);
}

TEST(RituTest, VtncAdvancesWithHeartbeatsDespiteQuietSites) {
  auto config = Config(Method::kRituMulti, 4);
  config.heartbeat_interval_us = 10'000;
  ReplicatedSystem system(config);
  // Only site 0 updates; sites 1-3 stay quiet. Heartbeats must still let
  // the VTNC pass the write.
  MustSubmit(system, 0, {Tsw(0, 5)});
  system.RunFor(500'000);
  auto* method = static_cast<RituMethod*>(system.site_method(2));
  MustSubmit(system, 0, {Tsw(1, 6)});  // keep one update in flight
  EXPECT_GT(method->Vtnc().counter, 0);
  auto values = RunQuery(system, 2, /*epsilon=*/0, {0});
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt(), 5) << "stable write visible below VTNC";
}

TEST(RituTest, PinnedSnapshotIsStableAcrossQueryLifetime) {
  auto config = Config(Method::kRituMulti);
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Tsw(0, 1), Tsw(1, 1)});
  system.RunUntilQuiescent();
  const EtId q = system.BeginQuery(1, /*epsilon=*/0);
  Result<Value> first = system.TryRead(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 1);
  // New update lands and stabilizes mid-query.
  MustSubmit(system, 0, {Tsw(0, 99), Tsw(1, 99)});
  system.RunUntilQuiescent();
  Result<Value> second = system.TryRead(q, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 1)
      << "reads stay at the pinned VTNC snapshot: no torn view";
  EXPECT_EQ(system.query_state(q)->inconsistency, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(RituTest, EpsilonZeroQueriesArePrefixConsistent) {
  auto config = Config(Method::kRituMulti, 3, 37);
  config.network.jitter_us = 2'000;
  config.heartbeat_interval_us = 5'000;
  ReplicatedSystem system(config);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 3; ++i) {
      MustSubmit(system, i, {Tsw(i, round * 10 + i), Tsw(3, round)});
    }
    system.RunFor(30'000);
    RunQuery(system, round % 3, /*epsilon=*/0, {0, 1, 2, 3});
  }
  system.RunUntilQuiescent();
  auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  ASSERT_TRUE(sr.serializable) << sr.violation;
  auto reports = analysis::AnalyzeQueries(system.history(), sr.serial_order);
  for (const auto& r : reports) {
    EXPECT_TRUE(r.prefix_consistent)
        << "epsilon=0 RITU query " << r.query << " must be 1SR";
    EXPECT_EQ(r.charged, 0);
  }
}

TEST(RituTest, QueriesNeverBlockOrRestart) {
  auto config = Config(Method::kRituMulti);
  config.network.base_latency_us = 50'000;
  ReplicatedSystem system(config);
  for (int i = 0; i < 5; ++i) MustSubmit(system, 0, {Tsw(0, i)});
  // Even with everything in flight, epsilon=0 reads answer immediately
  // from the snapshot.
  const EtId q = system.BeginQuery(0, 0);
  Result<Value> v = system.TryRead(q, 0);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(system.query_state(q)->blocked_attempts, 0);
  EXPECT_EQ(system.query_state(q)->restarts, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(RituTest, BudgetSpentThenSnapshotForRemainder) {
  auto config = Config(Method::kRituMulti);
  config.network.base_latency_us = 30'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Tsw(0, 1)});
  MustSubmit(system, 0, {Tsw(1, 2)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/1);
  Result<Value> first = system.TryRead(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 1) << "budget pays for the fresh version";
  Result<Value> second = system.TryRead(q, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, Value()) << "budget exhausted -> snapshot read";
  EXPECT_EQ(system.query_state(q)->inconsistency, 1);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(RituTest, VersionGcPrunesChainsAndStillConverges) {
  auto config = Config(Method::kRituMulti);
  config.version_gc = true;
  config.store_partitions = 4;
  ReplicatedSystem system(config);
  // Many updates to the same object: with GC on, every VTNC advance prunes
  // the chain below the watermark, so once quiescent each site keeps only
  // the newest at-or-below-VTNC version (plus anything above it).
  for (int i = 0; i < 30; ++i) {
    MustSubmit(system, i % 3, {Tsw(0, 100 + i)});
    if (i % 5 == 4) system.RunUntilQuiescent();
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_GT(system.counters().Get("esr.versions_gc_pruned"), 0)
      << "sustained same-object writes must trigger stability-driven GC";
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_LE(system.site_versions(s).VersionCount(0), 2)
        << "site " << s << ": chain stays bounded once the VTNC passes";
    // The latest value survives pruning.
    auto latest = system.site_versions(s).ReadLatest(0);
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->value.AsInt(), 129);
  }
}

TEST(RituTest, VersionGcKeepsPinnedSnapshotReadable) {
  auto config = Config(Method::kRituMulti);
  config.version_gc = true;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Tsw(0, 1)});
  system.RunUntilQuiescent();
  const EtId q = system.BeginQuery(1, /*epsilon=*/0);
  Result<Value> first = system.TryRead(q, 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->AsInt(), 1);
  // A burst of updates stabilizes mid-query; GC runs on each VTNC advance
  // but must clamp its floor to this query's pin.
  for (int i = 0; i < 10; ++i) {
    MustSubmit(system, 0, {Tsw(0, 50 + i)});
    system.RunUntilQuiescent();
  }
  Result<Value> again = system.TryRead(q, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->AsInt(), 1)
      << "GC must not prune the version a live pinned query still needs";
  ASSERT_TRUE(system.EndQuery(q).ok());
  // With the pin released, the next quiescent GC pass may prune freely.
  MustSubmit(system, 0, {Tsw(0, 99)});
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(RituTest, SingleVersionReducesToCommuBounding) {
  auto config = Config(Method::kRituSingle);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Tsw(0, 5)});
  const EtId q = system.BeginQuery(0, /*epsilon=*/0);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsUnavailable())
      << "single-version mode uses lock-counters, like COMMU";
  ASSERT_TRUE(system.EndQuery(q).ok());
}

}  // namespace
}  // namespace esr::core
