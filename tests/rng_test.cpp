#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace esr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(9, 9), 9);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Zipf(50, 0.9);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, ZipfSkewsTowardSmallRanks) {
  Rng rng(19);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(100, 0.9)];
  // Rank 0 should be far more popular than rank 50.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(RngTest, ZipfThetaZeroIsUniformish) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 500);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace esr
