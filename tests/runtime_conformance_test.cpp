// Conformance tests for the runtime seam (runtime/interfaces.h) against
// BOTH bindings — the deterministic simulator binding (SimTransport +
// Simulator-as-Clock + SimExecutor) and the real binding (TcpTransport +
// TimerWheel + ThreadPool strands). The contracts checked are the ones
// protocol code is written against:
//
//   * delivery: sent messages arrive, in per-peer send order (sim: with
//     jitter disabled), with sender identity and payload intact
//   * no delivery after Stop(): a stopped transport never invokes its
//     handler again, even for messages already in flight
//   * timers: earlier deadline fires first, FIFO among equal deadlines;
//     Cancel() == true guarantees the callback never runs — including for
//     a timer already expired and posted but not yet executed
//   * strand: tasks never run concurrently and run in post order
//
// Plus an end-to-end check: a 3-site OrdupNode cluster over the sim
// binding converges deterministically, and a site amnesia-restart with an
// in-flight sequencer grant is healed (the order hole is filled, the
// cluster drains).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/interfaces.h"
#include "runtime/ordup_node.h"
#include "runtime/sim_binding.h"
#include "runtime/tcp_transport.h"
#include "runtime/thread_pool.h"
#include "runtime/timer_wheel.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "store/operation.h"

namespace esr::runtime {
namespace {

/// Deterministic executor for TimerWheel unit tests: posted thunks queue
/// until the test drains them explicitly. Mutex-guarded because the wheel
/// posts from its own thread while the test polls and drains.
class ManualExecutor : public Executor {
 public:
  void Post(std::function<void()> fn) override {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  int Drain() {
    int n = 0;
    for (;;) {
      std::function<void()> fn;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty()) return n;
        fn = std::move(queue_.front());
        queue_.pop_front();
      }
      fn();
      ++n;
    }
  }
  bool WaitNonEmpty(int timeout_ms) {
    for (int i = 0; i < timeout_ms; ++i) {
      if (!Empty()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return !Empty();
  }

 private:
  bool Empty() {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.empty();
  }

  std::mutex mu_;
  std::deque<std::function<void()>> queue_;
};

sim::NetworkConfig LosslessFifoNetwork() {
  sim::NetworkConfig config;
  config.base_latency_us = 1'000;
  config.jitter_us = 0;  // equal latency + FIFO tiebreak = in-order
  config.loss_probability = 0.0;
  return config;
}

Message Msg(int type, std::string payload) {
  Message m;
  m.type = type;
  m.payload = std::move(payload);
  return m;
}

/// --- Sim binding -----------------------------------------------------------

TEST(SimBindingTest, DeliversInOrderWithSenderAndPayload) {
  sim::Simulator simulator;
  sim::Network network(&simulator, 2, LosslessFifoNetwork(), /*seed=*/1);
  SimTransport a(&network, 0);
  SimTransport b(&network, 1);
  std::vector<std::pair<SiteId, std::string>> got;
  b.SetHandler([&](SiteId from, Message msg) {
    got.emplace_back(from, msg.payload);
  });
  a.Start();
  b.Start();
  for (int i = 0; i < 50; ++i) {
    a.Send(1, Msg(7, "m" + std::to_string(i)));
  }
  simulator.Run();
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)].first, 0);
    EXPECT_EQ(got[static_cast<size_t>(i)].second, "m" + std::to_string(i));
  }
}

TEST(SimBindingTest, NoDeliveryAfterStopEvenForInFlightMessages) {
  sim::Simulator simulator;
  sim::Network network(&simulator, 2, LosslessFifoNetwork(), /*seed=*/1);
  SimTransport a(&network, 0);
  SimTransport b(&network, 1);
  int delivered = 0;
  b.SetHandler([&](SiteId, Message) { ++delivered; });
  a.Start();
  b.Start();
  a.Send(1, Msg(1, "in-flight"));
  b.Stop();  // message is scheduled for delivery but must be dropped
  simulator.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(SimBindingTest, SimulatorClockTimerOrderingAndCancel) {
  sim::Simulator simulator;
  Clock* clock = &simulator;
  std::vector<int> fired;
  clock->Schedule(300, [&] { fired.push_back(3); });
  clock->Schedule(100, [&] { fired.push_back(1); });
  const TimerId second = clock->Schedule(200, [&] { fired.push_back(2); });
  clock->Schedule(100, [&] { fired.push_back(11); });  // FIFO among equals
  EXPECT_TRUE(clock->Cancel(second));
  EXPECT_FALSE(clock->Cancel(second));  // already cancelled
  simulator.Run();
  EXPECT_EQ(fired, (std::vector<int>{1, 11, 3}));
  EXPECT_EQ(clock->Now(), 300);
}

TEST(SimBindingTest, SimExecutorPreservesPostOrder) {
  sim::Simulator simulator;
  SimExecutor executor(&simulator);
  std::vector<int> ran;
  for (int i = 0; i < 10; ++i) {
    executor.Post([&ran, i] { ran.push_back(i); });
  }
  simulator.Run();
  ASSERT_EQ(ran.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ran[static_cast<size_t>(i)], i);
}

/// --- Real binding: thread pool + strand ------------------------------------

TEST(StrandTest, SerializesAndPreservesFifoUnderConcurrentPosts) {
  ThreadPool pool(4);
  std::unique_ptr<Strand> strand = pool.MakeStrand();
  std::atomic<bool> in_task{false};
  std::atomic<int> overlaps{0};
  std::vector<int> order;
  constexpr int kPerThread = 200;
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        strand->Post([&, t, i] {
          if (in_task.exchange(true)) overlaps.fetch_add(1);
          order.push_back(t * kPerThread + i);  // unsynchronized on purpose
          in_task.store(false);
        });
      }
    });
  }
  for (auto& th : posters) th.join();
  pool.Shutdown();
  EXPECT_EQ(overlaps.load(), 0);
  ASSERT_EQ(order.size(), static_cast<size_t>(4 * kPerThread));
  // FIFO per poster: each thread's tasks appear in its own post order.
  std::vector<int> next(4, 0);
  for (int v : order) {
    const int t = v / kPerThread;
    EXPECT_EQ(v % kPerThread, next[static_cast<size_t>(t)]);
    ++next[static_cast<size_t>(t)];
  }
}

TEST(StrandTest, RunningInThisStrandIsTrueOnlyInside) {
  ThreadPool pool(2);
  std::unique_ptr<Strand> strand = pool.MakeStrand();
  EXPECT_FALSE(strand->RunningInThisStrand());
  std::atomic<bool> inside{false};
  strand->Post([&] { inside.store(strand->RunningInThisStrand()); });
  pool.Shutdown();
  EXPECT_TRUE(inside.load());
}

/// --- Real binding: timer wheel ---------------------------------------------

TEST(TimerWheelTest, FiresInDeadlineOrder) {
  ThreadPool pool(1);
  std::unique_ptr<Strand> strand = pool.MakeStrand();
  TimerWheel wheel(strand.get());
  wheel.Start();
  std::vector<int> fired;
  std::atomic<int> count{0};
  wheel.Schedule(60'000, [&] { fired.push_back(3); count.fetch_add(1); });
  wheel.Schedule(20'000, [&] { fired.push_back(1); count.fetch_add(1); });
  wheel.Schedule(40'000, [&] { fired.push_back(2); count.fetch_add(1); });
  for (int i = 0; i < 2000 && count.load() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  wheel.Stop();
  pool.Shutdown();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheelTest, CancelBeforeExpiryPreventsRun) {
  ManualExecutor executor;
  TimerWheel wheel(&executor);
  wheel.Start();
  bool ran = false;
  const TimerId id = wheel.Schedule(5'000'000, [&] { ran = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  wheel.Stop();
  executor.Drain();
  EXPECT_FALSE(ran);
}

TEST(TimerWheelTest, CancelAfterExpiryButBeforeExecutionPreventsRun) {
  // The strongest clause of the Clock contract: a timer whose thunk is
  // already sitting on the executor can still be cancelled — Cancel()
  // returning true means the callback will never run.
  ManualExecutor executor;
  TimerWheel wheel(&executor);
  wheel.Start();
  bool ran = false;
  const TimerId id = wheel.Schedule(1'000, [&] { ran = true; });
  ASSERT_TRUE(executor.WaitNonEmpty(2'000));  // expired and posted
  EXPECT_TRUE(wheel.Cancel(id));
  executor.Drain();  // runs the posted thunk, which must no-op
  EXPECT_FALSE(ran);
  wheel.Stop();
}

TEST(TimerWheelTest, MonotonicNow) {
  ManualExecutor executor;
  TimerWheel wheel(&executor);
  const SimTime a = wheel.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const SimTime b = wheel.Now();
  EXPECT_GE(b - a, 4'000);
}

/// --- Real binding: TCP transport -------------------------------------------

struct TcpPair {
  explicit TcpPair(ThreadPool* pool)
      : strand_a(pool->MakeStrand()), strand_b(pool->MakeStrand()) {
    TcpTransportConfig cfg_a;
    cfg_a.self = 0;
    cfg_a.peers = {"127.0.0.1:0", "127.0.0.1:0"};
    TcpTransportConfig cfg_b = cfg_a;
    cfg_b.self = 1;
    a = std::make_unique<TcpTransport>(cfg_a, strand_a.get());
    b = std::make_unique<TcpTransport>(cfg_b, strand_b.get());
    a->Start();
    b->Start();
    // Ephemeral ports are only known after Start.
    a->SetPeerAddress(1, "127.0.0.1:" + std::to_string(b->port()));
    b->SetPeerAddress(0, "127.0.0.1:" + std::to_string(a->port()));
  }

  std::unique_ptr<Strand> strand_a;
  std::unique_ptr<Strand> strand_b;
  std::unique_ptr<TcpTransport> a;
  std::unique_ptr<TcpTransport> b;
};

TEST(TcpTransportTest, DeliversInOrderWithTypeSenderAndPayload) {
  ThreadPool pool(2);
  TcpPair pair(&pool);
  std::mutex mu;
  std::vector<Message> got;
  std::atomic<int> count{0};
  pair.b->SetHandler([&](SiteId from, Message msg) {
    EXPECT_EQ(from, 0);
    std::lock_guard<std::mutex> lock(mu);
    got.push_back(std::move(msg));
    count.fetch_add(1);
  });
  constexpr int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    pair.a->Send(1, Msg(i % 7, "payload-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000 && count.load() < kMessages; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pair.a->Stop();
  pair.b->Stop();
  pool.Shutdown();
  ASSERT_EQ(got.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)].type, i % 7);
    EXPECT_EQ(got[static_cast<size_t>(i)].payload,
              "payload-" + std::to_string(i));
  }
}

TEST(TcpTransportTest, LoopbackSelfSendDelivers) {
  ThreadPool pool(2);
  std::unique_ptr<Strand> strand = pool.MakeStrand();
  TcpTransportConfig cfg;
  cfg.self = 0;
  cfg.peers = {"127.0.0.1:0"};
  TcpTransport t(cfg, strand.get());
  std::atomic<int> got{0};
  t.SetHandler([&](SiteId from, Message msg) {
    EXPECT_EQ(from, 0);
    EXPECT_EQ(msg.payload, "self");
    got.fetch_add(1);
  });
  t.Start();
  t.Send(0, Msg(1, "self"));
  for (int i = 0; i < 2000 && got.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  t.Stop();
  pool.Shutdown();
  EXPECT_EQ(got.load(), 1);
}

TEST(TcpTransportTest, NoDeliveryAfterStop) {
  ThreadPool pool(2);
  TcpPair pair(&pool);
  std::atomic<int> delivered{0};
  pair.b->SetHandler([&](SiteId, Message) { delivered.fetch_add(1); });
  pair.a->Send(1, Msg(1, "warmup"));
  for (int i = 0; i < 5000 && delivered.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(delivered.load(), 1);
  pair.b->Stop();
  const int after_stop = delivered.load();
  for (int i = 0; i < 50; ++i) {
    pair.a->Send(1, Msg(1, "late-" + std::to_string(i)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(delivered.load(), after_stop);
  pair.a->Stop();
  pool.Shutdown();
}

/// --- End to end: OrdupNode over the sim binding ---------------------------

struct SimCluster {
  explicit SimCluster(int n, uint64_t seed = 7,
                      sim::NetworkConfig net = LosslessFifoNetwork())
      : network(&simulator, n, net, seed) {
    for (SiteId s = 0; s < n; ++s) {
      transports.push_back(std::make_unique<SimTransport>(&network, s));
      OrdupNodeConfig cfg;
      cfg.self = s;
      cfg.num_sites = n;
      cfg.sequencer_site = 0;
      nodes.push_back(std::make_unique<OrdupNode>(
          cfg, transports.back().get(), &simulator, nullptr, nullptr));
    }
    for (auto& node : nodes) node->Start();
  }

  sim::Simulator simulator;
  sim::Network network;
  std::vector<std::unique_ptr<SimTransport>> transports;
  std::vector<std::unique_ptr<OrdupNode>> nodes;
};

TEST(OrdupNodeSimTest, ThreeSitesConvergeDeterministically) {
  uint64_t first_digest = 0;
  for (int run = 0; run < 2; ++run) {
    SimCluster cluster(3);
    for (int round = 0; round < 20; ++round) {
      for (SiteId s = 0; s < 3; ++s) {
        cluster.nodes[static_cast<size_t>(s)]->SubmitUpdate(
            {store::Operation::Increment(1 + round % 4, 1 + s)});
      }
    }
    // Bounded horizon: the retry loop re-arms itself while nodes run, so
    // the event queue never drains on its own.
    cluster.simulator.RunUntil(5'000'000);
    const uint64_t digest = cluster.nodes[0]->store().StateDigest();
    for (SiteId s = 0; s < 3; ++s) {
      OrdupNode& node = *cluster.nodes[static_cast<size_t>(s)];
      EXPECT_EQ(node.applied_watermark(), 60) << "site " << s;
      EXPECT_EQ(node.store().StateDigest(), digest) << "site " << s;
      EXPECT_TRUE(node.Idle()) << "site " << s;
      EXPECT_EQ(node.stable_count(), 60) << "site " << s;
    }
    if (run == 0) {
      first_digest = digest;
    } else {
      EXPECT_EQ(digest, first_digest) << "determinism across identical runs";
    }
  }
}

TEST(OrdupNodeSimTest, ConvergesUnderLossAndReordering) {
  sim::NetworkConfig net;
  net.base_latency_us = 1'000;
  net.jitter_us = 900;
  net.loss_probability = 0.05;
  SimCluster cluster(3, /*seed=*/42, net);
  for (int round = 0; round < 15; ++round) {
    for (SiteId s = 0; s < 3; ++s) {
      cluster.nodes[static_cast<size_t>(s)]->SubmitUpdate(
          {store::Operation::Increment(1 + s, 1)});
    }
  }
  cluster.simulator.RunUntil(10'000'000);
  const uint64_t digest = cluster.nodes[0]->store().StateDigest();
  for (SiteId s = 0; s < 3; ++s) {
    OrdupNode& node = *cluster.nodes[static_cast<size_t>(s)];
    EXPECT_EQ(node.applied_watermark(), 45) << "site " << s;
    EXPECT_EQ(node.store().StateDigest(), digest) << "site " << s;
    EXPECT_TRUE(node.Idle()) << "site " << s;
  }
}

TEST(OrdupNodeSimTest, AmnesiaRestartWithInFlightGrantHealsOrderHole) {
  // Site 1 submits one update and dies with the sequencer's grant still in
  // flight: position 1 is granted but no MSet for it will ever exist. The
  // restarted incarnation must make the cluster whole again — the server
  // detects the incarnation jump, probes, and fills the hole with a no-op.
  SimCluster cluster(3);
  cluster.nodes[1]->SubmitUpdate({store::Operation::Increment(1, 100)});
  // The order server only activates once its startup probe round-trip
  // finishes (t~2000, epoch 2); site 1's request is then re-sent on the
  // epoch announce (t~3000), granted at t~4000, and the grant lands back at
  // t~5000. Stop site 1 at t=4500: the grant is consumed by a dead site.
  cluster.simulator.RunUntil(4'500);
  cluster.nodes[1]->Stop();
  cluster.transports[1]->Stop();
  cluster.simulator.RunUntil(1'000'000);
  EXPECT_EQ(cluster.nodes[0]->applied_watermark(), 0);  // the hole stalls all

  // Amnesia restart: a fresh node, same site id, higher incarnation.
  auto transport = std::make_unique<SimTransport>(&cluster.network, 1);
  OrdupNodeConfig cfg;
  cfg.self = 1;
  cfg.num_sites = 3;
  cfg.sequencer_site = 0;
  cfg.incarnation = 1'000'000;
  OrdupNode restarted(cfg, transport.get(), &cluster.simulator, nullptr,
                      nullptr);
  restarted.Start();
  restarted.SubmitUpdate({store::Operation::Increment(2, 5)});
  cluster.nodes[0]->SubmitUpdate({store::Operation::Increment(3, 7)});
  cluster.simulator.RunUntil(10'000'000);

  // Healed: the granted-but-dead position was no-op filled, both live
  // updates applied, everyone agrees.
  const uint64_t digest = cluster.nodes[0]->store().StateDigest();
  EXPECT_EQ(cluster.nodes[0]->applied_watermark(), 3);
  EXPECT_EQ(cluster.nodes[2]->applied_watermark(), 3);
  EXPECT_EQ(restarted.applied_watermark(), 3);
  EXPECT_EQ(restarted.store().StateDigest(), digest);
  EXPECT_EQ(cluster.nodes[2]->store().StateDigest(), digest);
  EXPECT_TRUE(restarted.Idle());
  EXPECT_TRUE(cluster.nodes[0]->Idle());
  // The dead incarnation's +100 increment never landed anywhere.
  EXPECT_EQ(restarted.store().Read(1).AsInt(), 0);
  EXPECT_EQ(restarted.store().Read(2).AsInt(), 5);
  EXPECT_EQ(restarted.store().Read(3).AsInt(), 7);
}

}  // namespace
}  // namespace esr::runtime
