// Sagas over COMPE (paper section 4.2): step decisions are deferred to the
// end of the saga, so the lock-counters (potential compensations) are held
// for its whole duration — the conservative upper bound queries rely on.

#include <gtest/gtest.h>

#include "esr/compe.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;

TEST(SagaTest, RequiresCompe) {
  ReplicatedSystem system(Config(Method::kCommu));
  EXPECT_EQ(system.BeginSaga(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SagaTest, CommittedSagaFinalizesAllSteps) {
  ReplicatedSystem system(Config(Method::kCompe));
  auto saga = system.BeginSaga(0);
  ASSERT_TRUE(saga.ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Increment(0, 10)}).ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Increment(1, 20)}).ok());
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.EndSaga(*saga, /*commit=*/true).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 10);
  EXPECT_EQ(system.SiteValue(2, 1).AsInt(), 20);
  EXPECT_EQ(system.counters().Get("esr.sagas_committed"), 1);
}

TEST(SagaTest, AbortedSagaCompensatesAllStepsEverywhere) {
  ReplicatedSystem system(Config(Method::kCompe));
  MustSubmit(system, 1, {Operation::Increment(0, 100)});
  system.RunUntilQuiescent();
  auto saga = system.BeginSaga(0);
  ASSERT_TRUE(saga.ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Increment(0, -30)}).ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Increment(0, -40)}).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 30) << "steps applied optimistically";
  ASSERT_TRUE(system.EndSaga(*saga, /*commit=*/false).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 100)
      << "all saga effects compensated";
  EXPECT_EQ(system.counters().Get("esr.sagas_aborted"), 1);
}

TEST(SagaTest, CountersHeldUntilSagaEnd) {
  ReplicatedSystem system(Config(Method::kCompe));
  auto saga = system.BeginSaga(0);
  ASSERT_TRUE(saga.ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Increment(0, 5)}).ok());
  system.RunUntilQuiescent();
  // Even fully propagated, the step is undecided: a strict query waits.
  auto* method = static_cast<CompeMethod*>(system.site_method(0));
  EXPECT_EQ(method->TentativeCount(0), 1)
      << "potential compensation held through the saga";
  const EtId q = system.BeginQuery(0, /*epsilon=*/0);
  EXPECT_TRUE(system.TryRead(q, 0).status().IsUnavailable());
  ASSERT_TRUE(system.EndQuery(q).ok());

  ASSERT_TRUE(system.EndSaga(*saga, true).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(method->TentativeCount(0), 0);
  const EtId q2 = system.BeginQuery(0, /*epsilon=*/0);
  EXPECT_TRUE(system.TryRead(q2, 0).ok());
  ASSERT_TRUE(system.EndQuery(q2).ok());
}

TEST(SagaTest, QueryChargedForEveryOpenSagaStep) {
  ReplicatedSystem system(Config(Method::kCompe));
  auto saga = system.BeginSaga(0);
  ASSERT_TRUE(saga.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        system.SubmitSagaStep(*saga, {Operation::Increment(0, 1)}).ok());
  }
  system.RunUntilQuiescent();
  const EtId q = system.BeginQuery(0, /*epsilon=*/5);
  ASSERT_TRUE(system.TryRead(q, 0).ok());
  EXPECT_EQ(system.query_state(q)->inconsistency, 3)
      << "one unit per uncompensatable-yet step";
  ASSERT_TRUE(system.EndQuery(q).ok());
  ASSERT_TRUE(system.EndSaga(*saga, true).ok());
  system.RunUntilQuiescent();
}

TEST(SagaTest, NonCommutativeSagaRollsBackInReverse) {
  ReplicatedSystem system(Config(Method::kCompeOrdered));
  const EtId seed =
      MustSubmit(system, 1, {Operation::Write(0, Value(int64_t{3}))});
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(seed, true).ok());
  auto saga = system.BeginSaga(0);
  ASSERT_TRUE(saga.ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Increment(0, 10)}).ok());
  ASSERT_TRUE(system.SubmitSagaStep(*saga, {Operation::Multiply(0, 2)}).ok());
  system.RunUntilQuiescent();
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 26);  // (3+10)*2
  ASSERT_TRUE(system.EndSaga(*saga, false).ok());
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(2, 0).AsInt(), 3)
      << "multiply undone before increment (reverse order)";
}

TEST(SagaTest, UnknownSagaHandled) {
  ReplicatedSystem system(Config(Method::kCompe));
  EXPECT_TRUE(system.SubmitSagaStep(999, {Operation::Increment(0, 1)})
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(system.EndSaga(999, true).IsNotFound());
}

TEST(SagaTest, EmptySagaEndsCleanly) {
  ReplicatedSystem system(Config(Method::kCompe));
  auto saga = system.BeginSaga(2);
  ASSERT_TRUE(saga.ok());
  EXPECT_TRUE(system.EndSaga(*saga, true).ok());
  EXPECT_TRUE(system.EndSaga(*saga, true).IsNotFound()) << "single use";
}

}  // namespace
}  // namespace esr::core
