// Sequencer crash-resilience against the full replica control stack.
//
// Two fault models, one invariant: no total-order position is ever granted
// twice, and no granted position becomes a permanent hole.
//
//   * Amnesia crash of the home site — the grant cursor dies with the
//     site's volatile state. The pre-fix sequencer resumed granting from 1
//     after the restart, reissuing every position the first life had
//     already handed out: two updates with the same global order, replica
//     divergence. The fixed server rebuilds sealed and re-seeds from the
//     durable checkpoint floor plus a peer high-watermark probe before
//     unsealing in a fresh epoch.
//
//   * Fail-stop crash of the home with a configured standby — the standby
//     runs the seal–probe–unseal handover and resumes granting above
//     everything any survivor has seen, in a strictly higher epoch, while
//     updates keep flowing.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "analysis/sr_checker.h"
#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;

/// Global order positions of every committed (non-aborted) update.
std::vector<SequenceNumber> CommittedOrders(ReplicatedSystem& system) {
  std::vector<SequenceNumber> orders;
  for (const analysis::UpdateRecord& u : system.history().updates()) {
    if (!u.aborted) orders.push_back(u.order);
  }
  return orders;
}

TEST(SequencerFailoverTest, AmnesiaCrashOfHomeNeverReissuesPositions) {
  SystemConfig config = Config(Method::kOrdup, 3, 201);
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval_us = 40'000;
  ReplicatedSystem system(config);
  // Site 0 hosts the sequencer; it loses ALL volatile state at 55ms —
  // after the 40ms checkpoint persisted a durable grant floor — and
  // recovers at 150ms. Updates come from sites 1 and 2 throughout, so
  // grants are outstanding across the whole window.
  system.failures().ScheduleCrash(
      sim::CrashSpec{0, /*crash_at=*/55'000, /*restart_at=*/150'000,
                     /*amnesia=*/true});
  for (int i = 0; i < 18; ++i) {
    MustSubmit(system, 1 + (i % 2), {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.SiteValue(s, 0).AsInt(), 18) << "site " << s;
  }
  const std::vector<SequenceNumber> orders = CommittedOrders(system);
  ASSERT_EQ(orders.size(), 18u);
  const std::set<SequenceNumber> unique(orders.begin(), orders.end());
  EXPECT_EQ(unique.size(), 18u)
      << "a global order position was granted to two updates";
  for (SequenceNumber order : orders) EXPECT_GT(order, 0);
  // The restarted server unsealed in a fresh epoch above the crashed one.
  ASSERT_NE(system.site_seq_server(0), nullptr);
  EXPECT_FALSE(system.site_seq_server(0)->sealed());
  EXPECT_GE(system.site_seq_server(0)->epoch(), 2);
  const auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(sr.serializable) << sr.violation;
}

TEST(SequencerFailoverTest, StandbyTakeoverIsGapFreeAndDuplicateFree) {
  SystemConfig config = Config(Method::kOrdup, 3, 203);
  config.sequencer_standby = 2;
  ReplicatedSystem system(config);
  // The home fail-stops at 35ms with grants in flight; the standby seals,
  // probes the survivors, and unseals in epoch 2. The deposed home comes
  // back at 250ms and is sealed forever — its queued stale requests and
  // grants must not corrupt the order.
  system.failures().ScheduleCrash(
      sim::CrashSpec{0, /*crash_at=*/35'000, /*restart_at=*/250'000,
                     /*amnesia=*/false});
  for (int i = 0; i < 20; ++i) {
    MustSubmit(system, 1 + (i % 2), {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  // Every update committed exactly once everywhere: a duplicate grant or a
  // permanent hole in the order would break the count.
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.SiteValue(s, 0).AsInt(), 20) << "site " << s;
  }
  const std::vector<SequenceNumber> orders = CommittedOrders(system);
  ASSERT_EQ(orders.size(), 20u);
  const std::set<SequenceNumber> unique(orders.begin(), orders.end());
  EXPECT_EQ(unique.size(), 20u)
      << "a global order position was granted to two updates";
  EXPECT_EQ(system.sequencer_home(), 2);
  ASSERT_NE(system.site_seq_server(2), nullptr);
  EXPECT_FALSE(system.site_seq_server(2)->sealed());
  EXPECT_EQ(system.site_seq_server(2)->epoch(), 2);
  EXPECT_EQ(system.metrics().GetCounter("esr_seq_failovers_total").value(),
            1);
  const auto sr = analysis::CheckUpdateSerializability(system.history(), 3);
  EXPECT_TRUE(sr.serializable) << sr.violation;
}

TEST(SequencerFailoverTest, DeposedHomeRestartingWithAmnesiaStaysSealed) {
  // Home amnesia-crashes, the standby takes over during the outage, and
  // the home then restarts with amnesia as a *deposed* primary: it must
  // come back without an order server (requests drain into stubs) and the
  // standby remains the home.
  SystemConfig config = Config(Method::kOrdup, 3, 205);
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval_us = 40'000;
  config.sequencer_standby = 2;
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(
      sim::CrashSpec{0, /*crash_at=*/45'000, /*restart_at=*/160'000,
                     /*amnesia=*/true});
  for (int i = 0; i < 16; ++i) {
    MustSubmit(system, 1 + (i % 2), {Operation::Increment(0, 1)});
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.SiteValue(s, 0).AsInt(), 16) << "site " << s;
  }
  const std::vector<SequenceNumber> orders = CommittedOrders(system);
  const std::set<SequenceNumber> unique(orders.begin(), orders.end());
  EXPECT_EQ(unique.size(), orders.size())
      << "a global order position was granted to two updates";
  EXPECT_EQ(system.sequencer_home(), 2);
  EXPECT_EQ(system.site_seq_server(0), nullptr)
      << "the deposed primary must not resurrect an order server";
  ASSERT_NE(system.site_seq_server(2), nullptr);
  EXPECT_FALSE(system.site_seq_server(2)->sealed());
}

TEST(SequencerFailoverTest, FailoverWorksWithBatchingEnabled) {
  // Group sequencing and the epoch machinery compose: a batched in-flight
  // request re-sent across the takeover keeps one grant per request.
  SystemConfig config = Config(Method::kOrdup, 3, 207);
  config.sequencer_standby = 2;
  config.seq_batch_max = 4;
  config.seq_batch_linger_us = 2'000;
  ReplicatedSystem system(config);
  system.failures().ScheduleCrash(
      sim::CrashSpec{0, /*crash_at=*/30'000, /*restart_at=*/200'000,
                     /*amnesia=*/false});
  for (int i = 0; i < 24; ++i) {
    // Two back-to-back submissions per round so batches actually form.
    MustSubmit(system, 1 + (i % 2), {Operation::Increment(0, 1)});
    if (i % 2 == 1) system.RunFor(8'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(system.SiteValue(s, 0).AsInt(), 24) << "site " << s;
  }
  const std::vector<SequenceNumber> orders = CommittedOrders(system);
  ASSERT_EQ(orders.size(), 24u);
  const std::set<SequenceNumber> unique(orders.begin(), orders.end());
  EXPECT_EQ(unique.size(), 24u);
  EXPECT_EQ(system.sequencer_home(), 2);
}

}  // namespace
}  // namespace esr::core
