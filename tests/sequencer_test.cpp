#include "msg/sequencer.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "msg/stable_queue.h"
#include "obs/metric_registry.h"
#include "sim/simulator.h"

namespace esr::msg {
namespace {

class SequencerTest : public ::testing::Test {
 protected:
  void Build(sim::NetworkConfig net_config, int num_sites = 3) {
    net_ = std::make_unique<sim::Network>(&sim_, num_sites, net_config, 5);
    for (SiteId s = 0; s < num_sites; ++s) {
      mailboxes_.push_back(std::make_unique<Mailbox>(net_.get(), s));
      queues_.push_back(std::make_unique<StableQueueManager>(
          &sim_, mailboxes_.back().get(), StableQueueConfig{}));
    }
    server_ = std::make_unique<SequencerServer>(mailboxes_[0].get(),
                                                queues_[0].get());
    for (SiteId s = 0; s < num_sites; ++s) {
      clients_.push_back(std::make_unique<SequencerClient>(
          mailboxes_[s].get(), queues_[s].get(), /*home=*/0));
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<StableQueueManager>> queues_;
  std::unique_ptr<SequencerServer> server_;
  std::vector<std::unique_ptr<SequencerClient>> clients_;
};

TEST_F(SequencerTest, IssuesConsecutiveNumbers) {
  Build(sim::NetworkConfig{});
  std::vector<SequenceNumber> got;
  for (int i = 0; i < 5; ++i) {
    clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], i + 1);
  EXPECT_EQ(server_->LastIssued(), 5);
}

TEST_F(SequencerTest, NumbersAreGloballyUnique) {
  Build(sim::NetworkConfig{});
  std::multiset<SequenceNumber> got;
  for (SiteId s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) {
      clients_[s]->Request([&](SequenceNumber n) { got.insert(n); });
    }
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 30u);
  std::set<SequenceNumber> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), 30u);
  EXPECT_EQ(*unique.begin(), 1);
  EXPECT_EQ(*unique.rbegin(), 30);
}

TEST_F(SequencerTest, SelfHostedClientShortCircuits) {
  Build(sim::NetworkConfig{});
  SequenceNumber got = 0;
  clients_[0]->Request([&](SequenceNumber n) { got = n; });
  sim_.Run();
  EXPECT_EQ(got, 1);
}

TEST_F(SequencerTest, SurvivesMessageLoss) {
  sim::NetworkConfig net;
  net.loss_probability = 0.4;
  Build(net);
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    clients_[2]->Request([&](SequenceNumber) { ++responses; });
  }
  sim_.Run();
  EXPECT_EQ(responses, 20);
}

TEST_F(SequencerTest, RequestsDeferredWhileSequencerDown) {
  Build(sim::NetworkConfig{});
  net_->SetSiteDown(0);
  SequenceNumber got = 0;
  clients_[1]->Request([&](SequenceNumber n) { got = n; });
  sim_.RunUntil(100'000);
  EXPECT_EQ(got, 0);
  net_->SetSiteUp(0);
  sim_.Run();
  EXPECT_EQ(got, 1);
}

// --- Group sequencing ------------------------------------------------------

TEST_F(SequencerTest, BatchMaxCoalescesRequestsIntoOneWireBatch) {
  Build(sim::NetworkConfig{});
  obs::MetricRegistry metrics;
  server_->set_metrics(&metrics);
  clients_[1]->set_batching(/*batch_max=*/4, /*linger_us=*/1'000);
  std::vector<SequenceNumber> got;
  for (int i = 0; i < 4; ++i) {
    clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], i + 1);
  // Four requests, one wire batch.
  EXPECT_EQ(metrics.GetCounter("esr_seq_batches_total").value(), 1);
  EXPECT_EQ(metrics.GetCounter("esr_seq_grants_total").value(), 4);
}

TEST_F(SequencerTest, LingerFlushesPartialBatch) {
  Build(sim::NetworkConfig{});
  obs::MetricRegistry metrics;
  server_->set_metrics(&metrics);
  clients_[1]->set_batching(/*batch_max=*/8, /*linger_us=*/500);
  std::vector<SequenceNumber> got;
  for (int i = 0; i < 3; ++i) {
    clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  }
  // Below batch_max: nothing may be sent before the linger expires.
  sim_.RunUntil(400);
  EXPECT_TRUE(got.empty());
  sim_.Run();
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], i + 1);
  EXPECT_EQ(metrics.GetCounter("esr_seq_batches_total").value(), 1);
}

// --- Seal–failover–unseal --------------------------------------------------

TEST_F(SequencerTest, TakeoverRecoversHighWatermarkFromPeers) {
  Build(sim::NetworkConfig{});
  std::vector<SequenceNumber> got;
  for (int i = 0; i < 4; ++i) {
    clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 4u);

  // Home dies; a standby at site 2 takes over, probing the surviving peer.
  net_->SetSiteDown(0);
  auto standby = std::make_unique<SequencerServer>(
      mailboxes_[2].get(), queues_[2].get(), /*start_sealed=*/true);
  standby->BeginTakeover(/*durable_floor=*/1, /*peers=*/{1});
  sim_.RunUntil(200'000);
  EXPECT_FALSE(standby->sealed());
  EXPECT_EQ(standby->epoch(), 2);
  // Client 1 saw grants up to 4, so the new epoch must resume at 5.
  EXPECT_EQ(standby->NextToGrant(), 5);
  EXPECT_EQ(clients_[1]->home(), 2);
  EXPECT_EQ(clients_[1]->epoch(), 2);

  clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  sim_.RunUntil(400'000);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got.back(), 5);

  net_->SetSiteUp(0);  // let the queued announce drain so Run() terminates
  sim_.Run();
  std::set<SequenceNumber> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST_F(SequencerTest, TakeoverWithoutPeersUsesDurableFloor) {
  Build(sim::NetworkConfig{});
  auto standby = std::make_unique<SequencerServer>(
      mailboxes_[2].get(), queues_[2].get(), /*start_sealed=*/true);
  standby->BeginTakeover(/*durable_floor=*/6, /*peers=*/{});
  // No peers: the handover completes synchronously from the durable floor.
  EXPECT_FALSE(standby->sealed());
  EXPECT_EQ(standby->NextToGrant(), 6);
  EXPECT_EQ(standby->epoch(), 2);
  sim_.Run();  // drain the epoch announce broadcast
}

TEST_F(SequencerTest, StaleEpochGrantsAreDiscardedAndHolesReleased) {
  Build(sim::NetworkConfig{});
  obs::MetricRegistry metrics;
  clients_[1]->set_metrics(&metrics);
  std::vector<SequenceNumber> orphans;
  clients_[1]->set_orphan_handler(
      [&](SequenceNumber n) { orphans.push_back(n); });
  std::vector<SequenceNumber> got;
  // The request leaves toward home 0 (epoch 1) ...
  clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  // ... then a failover moves the client to epoch 2 / home 2 before the
  // epoch-1 grant can arrive. The client re-sends to the new home.
  auto successor = std::make_unique<SequencerServer>(
      mailboxes_[2].get(), queues_[2].get(), /*start_sealed=*/false,
      /*epoch=*/2, /*first=*/101);
  mailboxes_[1]->Dispatch(
      2, Envelope{kSeqEpochAnnounce, SeqEpochAnnounce{2, 2, 101}, {}});
  sim_.Run();
  // Exactly one grant fired — from the successor — and the superseded
  // epoch-1 grant was not double-delivered. Its position 1 lies below the
  // new epoch's floor (101), i.e. the takeover never re-granted it: it is
  // a hole in the total order and must be released as an orphan no-op.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 101);
  EXPECT_EQ(metrics.GetCounter("esr_seq_stale_grants_total").value(), 1);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0], 1);
  EXPECT_EQ(clients_[1]->MaxGrantSeen(), 101);
}

// --- Amnesia / orphaned grants ---------------------------------------------

TEST_F(SequencerTest, AbandonedBatchReleasesEveryPositionAsOrphan) {
  Build(sim::NetworkConfig{});
  clients_[1]->set_batching(/*batch_max=*/3, /*linger_us=*/0);
  std::vector<SequenceNumber> orphans;
  clients_[1]->set_orphan_handler(
      [&](SequenceNumber n) { orphans.push_back(n); });
  int callbacks = 0;
  for (int i = 0; i < 3; ++i) {
    clients_[1]->Request([&](SequenceNumber) { ++callbacks; });
  }
  // The batch is in flight; the requester dies with amnesia.
  clients_[1]->AbandonPending();
  EXPECT_EQ(clients_[1]->AbandonedCount(), 1);
  EXPECT_EQ(clients_[1]->PendingCount(), 0);
  sim_.Run();
  // The grant still arrives (stable queues) and every position of the
  // block is released as an orphan; no dead callback runs.
  EXPECT_EQ(callbacks, 0);
  ASSERT_EQ(orphans.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(orphans[i], i + 1);
  EXPECT_EQ(clients_[1]->AbandonedCount(), 0);
  EXPECT_EQ(clients_[1]->MaxGrantSeen(), 3);
}

TEST_F(SequencerTest, AbandonedIdsDroppedOnEpochChange) {
  Build(sim::NetworkConfig{});
  obs::MetricRegistry metrics;
  clients_[1]->set_metrics(&metrics);
  int orphan_calls = 0;
  clients_[1]->set_orphan_handler([&](SequenceNumber) { ++orphan_calls; });
  clients_[1]->Request([](SequenceNumber) {});
  clients_[1]->AbandonPending();
  EXPECT_EQ(clients_[1]->AbandonedCount(), 1);
  // An epoch change means the old epoch's grant (if ever issued) will be
  // discarded as stale — the abandoned bookkeeping must not grow forever.
  mailboxes_[1]->Dispatch(
      2, Envelope{kSeqEpochAnnounce, SeqEpochAnnounce{2, 2, 1}, {}});
  EXPECT_EQ(clients_[1]->AbandonedCount(), 0);
  EXPECT_EQ(metrics.GetCounter("esr_seq_abandoned_dropped_total").value(), 1);
  sim_.Run();
  // The epoch-1 grant arrives, is stale, and must not leak an orphan call.
  EXPECT_EQ(orphan_calls, 0);
}

}  // namespace
}  // namespace esr::msg
