#include "msg/sequencer.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "msg/stable_queue.h"
#include "sim/simulator.h"

namespace esr::msg {
namespace {

class SequencerTest : public ::testing::Test {
 protected:
  void Build(sim::NetworkConfig net_config, int num_sites = 3) {
    net_ = std::make_unique<sim::Network>(&sim_, num_sites, net_config, 5);
    for (SiteId s = 0; s < num_sites; ++s) {
      mailboxes_.push_back(std::make_unique<Mailbox>(net_.get(), s));
      queues_.push_back(std::make_unique<StableQueueManager>(
          &sim_, mailboxes_.back().get(), StableQueueConfig{}));
    }
    server_ = std::make_unique<SequencerServer>(mailboxes_[0].get(),
                                                queues_[0].get());
    for (SiteId s = 0; s < num_sites; ++s) {
      clients_.push_back(std::make_unique<SequencerClient>(
          mailboxes_[s].get(), queues_[s].get(), /*home=*/0));
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<StableQueueManager>> queues_;
  std::unique_ptr<SequencerServer> server_;
  std::vector<std::unique_ptr<SequencerClient>> clients_;
};

TEST_F(SequencerTest, IssuesConsecutiveNumbers) {
  Build(sim::NetworkConfig{});
  std::vector<SequenceNumber> got;
  for (int i = 0; i < 5; ++i) {
    clients_[1]->Request([&](SequenceNumber n) { got.push_back(n); });
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], i + 1);
  EXPECT_EQ(server_->LastIssued(), 5);
}

TEST_F(SequencerTest, NumbersAreGloballyUnique) {
  Build(sim::NetworkConfig{});
  std::multiset<SequenceNumber> got;
  for (SiteId s = 0; s < 3; ++s) {
    for (int i = 0; i < 10; ++i) {
      clients_[s]->Request([&](SequenceNumber n) { got.insert(n); });
    }
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 30u);
  std::set<SequenceNumber> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), 30u);
  EXPECT_EQ(*unique.begin(), 1);
  EXPECT_EQ(*unique.rbegin(), 30);
}

TEST_F(SequencerTest, SelfHostedClientShortCircuits) {
  Build(sim::NetworkConfig{});
  SequenceNumber got = 0;
  clients_[0]->Request([&](SequenceNumber n) { got = n; });
  sim_.Run();
  EXPECT_EQ(got, 1);
}

TEST_F(SequencerTest, SurvivesMessageLoss) {
  sim::NetworkConfig net;
  net.loss_probability = 0.4;
  Build(net);
  int responses = 0;
  for (int i = 0; i < 20; ++i) {
    clients_[2]->Request([&](SequenceNumber) { ++responses; });
  }
  sim_.Run();
  EXPECT_EQ(responses, 20);
}

TEST_F(SequencerTest, RequestsDeferredWhileSequencerDown) {
  Build(sim::NetworkConfig{});
  net_->SetSiteDown(0);
  SequenceNumber got = 0;
  clients_[1]->Request([&](SequenceNumber n) { got = n; });
  sim_.RunUntil(100'000);
  EXPECT_EQ(got, 0);
  net_->SetSiteUp(0);
  sim_.Run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace esr::msg
