// PlacementMap unit tests: deterministic assignment, replication-factor
// bounds, exact ownership counts, rendezvous remap stability, and the
// derived queries (ShardsOf / OwnersOf / CoOwners) the routing layer and
// recovery catch-up depend on.

#include "shard/placement_map.h"

#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "store/operation.h"

namespace esr::shard {
namespace {

using store::Operation;

ShardConfig Config(int32_t shards, int32_t rf,
                   uint64_t seed = 0x5eed5eedULL) {
  ShardConfig config;
  config.num_shards = shards;
  config.replication_factor = rf;
  config.placement_seed = seed;
  return config;
}

TEST(PlacementMapTest, DeterministicAcrossInstances) {
  for (uint64_t seed : {1ULL, 77ULL, 0x5eed5eedULL, ~0ULL}) {
    PlacementMap a(Config(8, 3, seed), 10);
    PlacementMap b(Config(8, 3, seed), 10);
    for (ObjectId o = 0; o < 500; ++o) {
      EXPECT_EQ(a.ShardOf(o), b.ShardOf(o)) << "seed=" << seed << " o=" << o;
    }
    for (ShardId k = 0; k < 8; ++k) {
      EXPECT_EQ(a.Owners(k), b.Owners(k)) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(PlacementMapTest, DifferentSeedsGiveDifferentPlacements) {
  PlacementMap a(Config(8, 2, 1), 10);
  PlacementMap b(Config(8, 2, 2), 10);
  int moved = 0;
  for (ObjectId o = 0; o < 500; ++o) {
    if (a.ShardOf(o) != b.ShardOf(o)) ++moved;
  }
  // Independent hashes agree on a shard with probability ~1/8.
  EXPECT_GT(moved, 300);
}

TEST(PlacementMapTest, ShardOfInRange) {
  PlacementMap map(Config(5, 2), 7);
  for (ObjectId o = 0; o < 1000; ++o) {
    const ShardId k = map.ShardOf(o);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 5);
  }
}

TEST(PlacementMapTest, EveryShardHasExactlyRfSortedOwners) {
  for (int sites : {2, 5, 8}) {
    for (int32_t rf : {1, 2, 3}) {
      if (rf > sites) continue;
      PlacementMap map(Config(16, rf), sites);
      for (ShardId k = 0; k < 16; ++k) {
        const std::vector<SiteId>& owners = map.Owners(k);
        ASSERT_EQ(owners.size(), static_cast<size_t>(rf));
        EXPECT_TRUE(std::is_sorted(owners.begin(), owners.end()));
        const std::set<SiteId> distinct(owners.begin(), owners.end());
        EXPECT_EQ(distinct.size(), owners.size()) << "duplicate owner";
        for (SiteId s : owners) {
          EXPECT_GE(s, 0);
          EXPECT_LT(s, sites);
          EXPECT_TRUE(map.Owns(s, k));
        }
      }
    }
  }
}

TEST(PlacementMapTest, ReplicationFactorClampedToSiteCount) {
  PlacementMap map(Config(4, 99), 3);
  EXPECT_EQ(map.replication_factor(), 3);
  for (ShardId k = 0; k < 4; ++k) {
    EXPECT_EQ(map.Owners(k).size(), 3u);
  }
  PlacementMap floor(Config(4, 0), 3);
  EXPECT_EQ(floor.replication_factor(), 1);
}

TEST(PlacementMapTest, OwnsAgreesWithOwnedShards) {
  PlacementMap map(Config(12, 2), 6);
  for (SiteId s = 0; s < 6; ++s) {
    const std::vector<ShardId>& owned = map.OwnedShards(s);
    EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end()));
    for (ShardId k = 0; k < 12; ++k) {
      const bool listed =
          std::binary_search(owned.begin(), owned.end(), k);
      EXPECT_EQ(listed, map.Owns(s, k)) << "s=" << s << " k=" << k;
    }
  }
}

TEST(PlacementMapTest, OwnsObjectFollowsShardOwnership) {
  PlacementMap map(Config(6, 2), 5);
  for (ObjectId o = 0; o < 200; ++o) {
    const ShardId k = map.ShardOf(o);
    int owner_count = 0;
    for (SiteId s = 0; s < 5; ++s) {
      EXPECT_EQ(map.OwnsObject(s, o), map.Owns(s, k));
      if (map.OwnsObject(s, o)) ++owner_count;
    }
    EXPECT_EQ(owner_count, 2) << "object owned by exactly RF sites";
  }
}

TEST(PlacementMapTest, AddingShardMovesOnlyRehomedObjects) {
  // Rendezvous property: growing the shard count must not reshuffle
  // objects among pre-existing shards — an object either keeps its shard
  // or moves to the brand-new one.
  PlacementMap before(Config(4, 2), 8);
  PlacementMap after(Config(5, 2), 8);
  int moved = 0;
  for (ObjectId o = 0; o < 2000; ++o) {
    const ShardId was = before.ShardOf(o);
    const ShardId now = after.ShardOf(o);
    if (now != was) {
      EXPECT_EQ(now, 4) << "object " << o << " moved to an old shard";
      ++moved;
    }
  }
  // ~1/5 of the universe should rehome to the new shard.
  EXPECT_GT(moved, 2000 / 10);
  EXPECT_LT(moved, 2000 / 2);
}

TEST(PlacementMapTest, AddingSiteStealsAtMostOneSlotPerShard) {
  PlacementMap before(Config(16, 2), 6);
  PlacementMap after(Config(16, 2), 7);
  for (ShardId k = 0; k < 16; ++k) {
    const std::vector<SiteId>& was = before.Owners(k);
    const std::vector<SiteId>& now = after.Owners(k);
    std::vector<SiteId> lost;
    std::set_difference(was.begin(), was.end(), now.begin(), now.end(),
                        std::back_inserter(lost));
    // The new site may displace one incumbent; never more.
    EXPECT_LE(lost.size(), 1u) << "shard " << k;
    if (!lost.empty()) {
      EXPECT_TRUE(std::binary_search(now.begin(), now.end(), SiteId{6}));
    }
  }
}

TEST(PlacementMapTest, ShardsOfIsSortedUniqueUnionOfOpShards) {
  PlacementMap map(Config(8, 2), 8);
  std::vector<Operation> ops;
  std::set<ShardId> expected;
  for (ObjectId o = 40; o < 48; ++o) {
    ops.push_back(Operation::Increment(o, 1));
    ops.push_back(Operation::Increment(o, 2));  // duplicate object
    expected.insert(map.ShardOf(o));
  }
  const std::vector<ShardId> shards = map.ShardsOf(ops);
  EXPECT_TRUE(std::is_sorted(shards.begin(), shards.end()));
  EXPECT_EQ(std::set<ShardId>(shards.begin(), shards.end()), expected);
  EXPECT_EQ(shards.size(), expected.size());
}

TEST(PlacementMapTest, OwnersOfIsSortedUnionOfOwnerSets) {
  PlacementMap map(Config(8, 3), 8);
  const std::vector<ShardId> shards = {1, 4, 6};
  std::set<SiteId> expected;
  for (ShardId k : shards) {
    expected.insert(map.Owners(k).begin(), map.Owners(k).end());
  }
  const std::vector<SiteId> owners = map.OwnersOf(shards);
  EXPECT_TRUE(std::is_sorted(owners.begin(), owners.end()));
  EXPECT_EQ(std::set<SiteId>(owners.begin(), owners.end()), expected);
  EXPECT_EQ(owners.size(), expected.size());
}

TEST(PlacementMapTest, CoOwnersShareAShardAndExcludeSelf) {
  PlacementMap map(Config(10, 2), 6);
  for (SiteId s = 0; s < 6; ++s) {
    const std::vector<SiteId> co = map.CoOwners(s);
    EXPECT_TRUE(std::is_sorted(co.begin(), co.end()));
    EXPECT_EQ(std::count(co.begin(), co.end(), s), 0);
    for (SiteId peer : co) {
      bool shares = false;
      for (ShardId k : map.OwnedShards(s)) {
        if (map.Owns(peer, k)) shares = true;
      }
      EXPECT_TRUE(shares) << "co-owner " << peer << " shares no shard";
    }
    // Completeness: every sharing peer is listed.
    for (SiteId peer = 0; peer < 6; ++peer) {
      if (peer == s) continue;
      bool shares = false;
      for (ShardId k : map.OwnedShards(s)) {
        if (map.Owns(peer, k)) shares = true;
      }
      EXPECT_EQ(shares, std::binary_search(co.begin(), co.end(), peer));
    }
  }
}

TEST(PlacementMapTest, AllShardsCoveredAtScale) {
  // No shard may end up empty-handed and every site index must be valid
  // even at awkward shard/site ratios.
  for (int shards : {1, 3, 7, 32}) {
    PlacementMap map(Config(shards, 2), 4);
    std::set<ShardId> hit;
    for (ObjectId o = 0; o < 4000; ++o) hit.insert(map.ShardOf(o));
    EXPECT_EQ(hit.size(), static_cast<size_t>(shards));
  }
}

}  // namespace
}  // namespace esr::shard
