// Partial replication against the full stack: owner-only routing and
// storage, cross-shard atomic commit, forwarded queries under an epsilon
// bound, deterministic sharded executions, per-shard sequencer failover,
// and amnesia recovery of an owner site.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"
#include "workload/workload.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

SystemConfig ShardedConfig(int num_shards, int rf, int sites, uint64_t seed) {
  SystemConfig config = Config(Method::kOrdup, sites, seed);
  config.shard.num_shards = num_shards;
  config.shard.replication_factor = rf;
  return config;
}

/// First `count` objects whose shard is `shard`.
std::vector<ObjectId> ObjectsInShard(const ReplicatedSystem& system,
                                     ShardId shard, int count) {
  std::vector<ObjectId> objects;
  for (ObjectId o = 0; o < 10'000 && static_cast<int>(objects.size()) < count;
       ++o) {
    if (system.placement()->ShardOf(o) == shard) objects.push_back(o);
  }
  EXPECT_EQ(objects.size(), static_cast<size_t>(count));
  return objects;
}

TEST(ShardingIntegrationTest, UnshardedConfigBuildsNoPlacementMap) {
  ReplicatedSystem system(Config(Method::kOrdup, 3, 11));
  EXPECT_EQ(system.placement(), nullptr);
}

TEST(ShardingIntegrationTest, SingleShardEtsStoreOnlyAtOwners) {
  ReplicatedSystem system(ShardedConfig(4, 2, 8, 301));
  const shard::PlacementMap& placement = *system.placement();
  // A spread of updates from every site, each ET touching one object
  // (hence exactly one shard).
  for (int round = 0; round < 5; ++round) {
    for (SiteId s = 0; s < 8; ++s) {
      MustSubmit(system, s,
                 {Operation::Increment(round * 8 + s, 1 + round)});
    }
    system.RunFor(20'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (ObjectId o = 0; o < 40; ++o) {
    const ShardId k = placement.ShardOf(o);
    const Value expected =
        system.SiteValue(placement.Owners(k).front(), o);
    for (SiteId s : placement.Owners(k)) {
      EXPECT_EQ(system.SiteValue(s, o).AsInt(), expected.AsInt())
          << "owners of shard " << k << " diverge on object " << o;
    }
    EXPECT_EQ(expected.AsInt(), 1 + (o / 8));
  }
  // Owner-only storage: a site's store materializes no object outside its
  // owned shards.
  for (SiteId s = 0; s < 8; ++s) {
    for (ObjectId o : system.site_store(s).ObjectIds()) {
      EXPECT_TRUE(placement.OwnsObject(s, o))
          << "site " << s << " stores non-owned object " << o;
    }
  }
}

TEST(ShardingIntegrationTest, CrossShardEtsCommitOnAllTouchedShards) {
  ReplicatedSystem system(ShardedConfig(4, 2, 8, 303));
  const shard::PlacementMap& placement = *system.placement();
  const ObjectId a = ObjectsInShard(system, 0, 1)[0];
  const ObjectId b = ObjectsInShard(system, 2, 1)[0];
  const ObjectId c = ObjectsInShard(system, 3, 1)[0];
  // Mixed single- and cross-shard traffic from rotating origins, including
  // a three-shard ET every round.
  for (int i = 0; i < 12; ++i) {
    MustSubmit(system, i % 8,
               {Operation::Increment(a, 1), Operation::Increment(b, 1)});
    MustSubmit(system, (i + 3) % 8,
               {Operation::Increment(a, 1), Operation::Increment(b, 1),
                Operation::Increment(c, 1)});
    MustSubmit(system, (i + 5) % 8, {Operation::Increment(c, 2)});
    system.RunFor(15'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s : placement.Owners(placement.ShardOf(a))) {
    EXPECT_EQ(system.SiteValue(s, a).AsInt(), 24) << "site " << s;
  }
  for (SiteId s : placement.Owners(placement.ShardOf(b))) {
    EXPECT_EQ(system.SiteValue(s, b).AsInt(), 24) << "site " << s;
  }
  for (SiteId s : placement.Owners(placement.ShardOf(c))) {
    EXPECT_EQ(system.SiteValue(s, c).AsInt(), 36) << "site " << s;
  }
}

TEST(ShardingIntegrationTest, ShardedExecutionIsDeterministic) {
  auto digests = [](uint64_t seed) {
    SystemConfig config = ShardedConfig(4, 2, 8, seed);
    ReplicatedSystem system(config);
    workload::WorkloadSpec spec;
    spec.num_objects = 128;
    spec.update_fraction = 0.6;
    spec.single_shard_fraction = 0.5;  // half the ETs go cross-shard
    spec.query_epsilon = 3;
    spec.duration_us = 150'000;
    spec.drain_us = 200'000;
    spec.seed = seed;
    workload::WorkloadRunner runner(&system, spec);
    const workload::WorkloadResult result = runner.Run();
    system.RunUntilQuiescent();
    EXPECT_GT(result.updates_committed, 0);
    EXPECT_TRUE(system.Converged());
    std::vector<uint64_t> out;
    for (SiteId s = 0; s < 8; ++s) out.push_back(system.SiteDigest(s));
    return out;
  };
  EXPECT_EQ(digests(901), digests(901));
  EXPECT_NE(digests(901), digests(902));
}

TEST(ShardingIntegrationTest, ForwardedReadsReturnOwnerValuesWithinEpsilon) {
  ReplicatedSystem system(ShardedConfig(4, 2, 8, 305));
  const shard::PlacementMap& placement = *system.placement();
  const std::vector<ObjectId> objects = ObjectsInShard(system, 1, 3);
  for (ObjectId o : objects) {
    MustSubmit(system, 0, {Operation::Increment(o, 7)});
  }
  system.RunUntilQuiescent();
  // A site owning none of shard 1 must answer through the owner.
  SiteId outsider = kInvalidSiteId;
  for (SiteId s = 0; s < 8; ++s) {
    if (!placement.Owns(s, 1)) {
      outsider = s;
      break;
    }
  }
  ASSERT_NE(outsider, kInvalidSiteId);
  int64_t inconsistency = -1;
  const std::vector<Value> values =
      RunQuery(system, outsider, /*epsilon=*/2, objects, &inconsistency);
  ASSERT_EQ(values.size(), objects.size());
  for (const Value& v : values) EXPECT_EQ(v.AsInt(), 7);
  EXPECT_LE(inconsistency, 2);
  EXPECT_GT(system.counters().Get("esr.reads_forwarded"), 0);
  // Direct strict reads at non-owner sites are refused, not silently
  // answered from a store that holds nothing.
  const EtId q = system.BeginQuery(outsider, kUnboundedEpsilon);
  EXPECT_EQ(system.TryRead(q, objects[0]).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(system.EndQuery(q).ok());
}

TEST(ShardingIntegrationTest, EpsilonBoundHoldsUnderConcurrentUpdates) {
  ReplicatedSystem system(ShardedConfig(4, 2, 8, 307));
  // Open-loop increments on one object per shard while finite-epsilon
  // queries run from owner and non-owner sites alike.
  std::vector<ObjectId> hot;
  for (ShardId k = 0; k < 4; ++k) {
    hot.push_back(ObjectsInShard(system, k, 1)[0]);
  }
  for (SimTime t = 0; t < 300'000; t += 3'000) {
    system.simulator().ScheduleAt(t, [&system, &hot, t]() {
      const SiteId origin = static_cast<SiteId>((t / 3'000) % 8);
      (void)system.SubmitUpdate(
          origin, {Operation::Increment(hot[(t / 3'000) % 4], 1)});
    });
  }
  system.RunFor(50'000);
  for (SiteId s = 0; s < 8; ++s) {
    int64_t inconsistency = -1;
    int64_t restarts = 0;
    (void)RunQuery(system, s, /*epsilon=*/2, hot, &inconsistency, &restarts);
    EXPECT_LE(inconsistency, 2) << "site " << s;
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(ShardingIntegrationTest, ShardSequencerFailoverKeepsOneShardFlowing) {
  ReplicatedSystem system(ShardedConfig(4, 2, 8, 309));
  const shard::PlacementMap& placement = *system.placement();
  const ShardId shard = 0;
  const SiteId home = system.shard_sequencer_home(shard);
  const SiteId standby = placement.Owners(shard)[1];
  ASSERT_NE(home, standby);
  // The home fail-stop crashes at 40ms with single-shard traffic running
  // throughout; the standby seals, probes, and unseals in a fresh epoch.
  system.failures().ScheduleCrash(sim::CrashSpec{
      home, /*crash_at=*/40'000, /*restart_at=*/400'000, /*amnesia=*/false});
  const ObjectId object = ObjectsInShard(system, shard, 1)[0];
  SiteId origin = kInvalidSiteId;
  for (SiteId s = 0; s < 8; ++s) {
    if (s != home) {
      origin = s;
      break;
    }
  }
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    (void)system.SubmitUpdate(origin, {Operation::Increment(object, 1)},
                              [&committed](Status s) {
                                if (s.ok()) ++committed;
                              });
    system.RunFor(12'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(committed, 20);
  EXPECT_EQ(system.shard_sequencer_home(shard), standby);
  for (SiteId s : placement.Owners(shard)) {
    EXPECT_EQ(system.SiteValue(s, object).AsInt(), 20) << "site " << s;
  }
}

TEST(ShardingIntegrationTest, AmnesiaCrashOfOwnerRecoversOwnedShards) {
  SystemConfig config = ShardedConfig(4, 2, 8, 311);
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval_us = 30'000;
  ReplicatedSystem system(config);
  const shard::PlacementMap& placement = *system.placement();
  // Crash an owner site that is not a shard-sequencer home so the test
  // isolates recovery of owned shard streams from sequencer failover.
  SiteId victim = kInvalidSiteId;
  for (SiteId s = 0; s < 8 && victim == kInvalidSiteId; ++s) {
    if (placement.OwnedShards(s).empty()) continue;
    bool is_home = false;
    for (ShardId k = 0; k < 4; ++k) {
      if (system.shard_sequencer_home(k) == s) is_home = true;
    }
    if (!is_home) victim = s;
  }
  ASSERT_NE(victim, kInvalidSiteId);
  system.failures().ScheduleCrash(sim::CrashSpec{
      victim, /*crash_at=*/60'000, /*restart_at=*/200'000, /*amnesia=*/true});
  // Sustained single- and cross-shard traffic from the surviving sites,
  // spanning the crash and the recovery window.
  const ObjectId a = ObjectsInShard(system, 0, 1)[0];
  const ObjectId b = ObjectsInShard(system, 2, 1)[0];
  for (int i = 0; i < 30; ++i) {
    const SiteId origin = static_cast<SiteId>(
        (victim + 1 + (i % 7)) % 8);  // never the victim
    MustSubmit(system, origin, {Operation::Increment(a, 1)});
    if (i % 2 == 0) {
      MustSubmit(system, origin,
                 {Operation::Increment(a, 1), Operation::Increment(b, 1)});
    }
    system.RunFor(10'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s : placement.Owners(placement.ShardOf(a))) {
    EXPECT_EQ(system.SiteValue(s, a).AsInt(), 45) << "site " << s;
  }
  for (SiteId s : placement.Owners(placement.ShardOf(b))) {
    EXPECT_EQ(system.SiteValue(s, b).AsInt(), 15) << "site " << s;
  }
  // The recovered site still honors owner-only storage.
  for (ObjectId o : system.site_store(victim).ObjectIds()) {
    EXPECT_TRUE(placement.OwnsObject(victim, o));
  }
}

TEST(ShardingIntegrationTest, AmnesiaCrashOfShardSeqHomeReseedsFromFloor) {
  // Regression: a shard-sequencer home that amnesia-restarts must re-seed
  // its grant cursor from the durable per-shard checkpoint floor
  // (checkpoint v4), not from position 1 — a floor-1 rebuild re-grants
  // positions whose grants no surviving peer happens to have witnessed.
  SystemConfig config = ShardedConfig(4, 2, 8, 317);
  config.recovery.enabled = true;
  config.recovery.checkpoint_interval_us = 20'000;
  // Keep the home seat with the victim: the restart (not a standby
  // takeover) must be the path that recovers the cursor.
  config.seq_failover_detect_us = 5'000'000;
  ReplicatedSystem system(config);
  const shard::PlacementMap& placement = *system.placement();
  const ShardId shard = 1;
  const SiteId victim = system.shard_sequencer_home(shard);
  const ObjectId a = ObjectsInShard(system, shard, 1)[0];
  // Advance the shard's grant cursor well past 1, with checkpoints taken.
  for (int i = 0; i < 10; ++i) {
    MustSubmit(system, static_cast<SiteId>(i % 8),
               {Operation::Increment(a, 1)});
    system.RunFor(8'000);
  }
  system.failures().ScheduleCrash(sim::CrashSpec{
      victim, /*crash_at=*/90'000, /*restart_at=*/200'000, /*amnesia=*/true});
  // Traffic from survivors spans the outage; their submissions stall until
  // the home returns (no failover) and must all land exactly once.
  for (int i = 0; i < 20; ++i) {
    const SiteId origin = static_cast<SiteId>((victim + 1 + (i % 7)) % 8);
    MustSubmit(system, origin, {Operation::Increment(a, 1)});
    system.RunFor(12'000);
  }
  system.RunUntilQuiescent();
  // The restarted home grants fresh positions for new work too.
  MustSubmit(system, victim, {Operation::Increment(a, 1)});
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  for (SiteId s : placement.Owners(shard)) {
    EXPECT_EQ(system.SiteValue(s, a).AsInt(), 31) << "site " << s;
  }
}

TEST(ShardingIntegrationTest, FailoverDuringCrossShardMixStaysConsistent) {
  ReplicatedSystem system(ShardedConfig(4, 2, 8, 313));
  const shard::PlacementMap& placement = *system.placement();
  const ShardId shard = 1;
  const SiteId home = system.shard_sequencer_home(shard);
  system.failures().ScheduleCrash(sim::CrashSpec{
      home, /*crash_at=*/50'000, /*restart_at=*/500'000, /*amnesia=*/false});
  const ObjectId in_shard = ObjectsInShard(system, shard, 1)[0];
  const ObjectId other = ObjectsInShard(system, 3, 1)[0];
  SiteId origin = home == 0 ? 1 : 0;
  int committed = 0;
  auto count = [&committed](Status s) {
    if (s.ok()) ++committed;
  };
  for (int i = 0; i < 15; ++i) {
    // Cross-shard ETs spanning the failing shard and a healthy one, plus
    // single-shard ETs on the healthy shard that must never stall.
    (void)system.SubmitUpdate(origin,
                              {Operation::Increment(in_shard, 1),
                               Operation::Increment(other, 1)},
                              count);
    (void)system.SubmitUpdate((origin + 2) % 8,
                              {Operation::Increment(other, 1)}, count);
    system.RunFor(20'000);
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(committed, 30);
  for (SiteId s : placement.Owners(shard)) {
    EXPECT_EQ(system.SiteValue(s, in_shard).AsInt(), 15) << "site " << s;
  }
  for (SiteId s : placement.Owners(placement.ShardOf(other))) {
    EXPECT_EQ(system.SiteValue(s, other).AsInt(), 30) << "site " << s;
  }
}

}  // namespace
}  // namespace esr::core
