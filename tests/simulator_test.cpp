#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace esr::sim {
namespace {

TEST(SimulatorTest, StartsAtTimeZeroAndQuiescent) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Quiescent());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedSchedulingAdvancesTime) {
  Simulator sim;
  SimTime inner_time = -1;
  sim.Schedule(10, [&]() {
    sim.Schedule(5, [&]() { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 15);
}

TEST(SimulatorTest, ZeroDelayRunsAfterCurrentEvent) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(0, [&]() {
    order.push_back(1);
    sim.Schedule(0, [&]() { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.Schedule(10, [&]() { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceFails) {
  Simulator sim;
  EventId id = sim.Schedule(10, []() {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(9999));
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int count = 0;
  sim.Schedule(10, [&]() { ++count; });
  sim.Schedule(20, [&]() { ++count; });
  sim.Schedule(30, [&]() { ++count; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.Now(), 500);
}

TEST(SimulatorTest, MaxEventsGuardStopsRunawayLoops) {
  Simulator sim;
  std::function<void()> loop = [&]() { sim.Schedule(1, loop); };
  sim.Schedule(1, loop);
  const int64_t executed = sim.Run(/*max_events=*/100);
  EXPECT_EQ(executed, 100);
}

TEST(SimulatorTest, PendingEventsCountsLiveOnly) {
  Simulator sim;
  EventId a = sim.Schedule(5, []() {});
  sim.Schedule(6, []() {});
  EXPECT_EQ(sim.PendingEvents(), 2);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1);
}

}  // namespace
}  // namespace esr::sim
