#include "analysis/sr_checker.h"

#include <gtest/gtest.h>

namespace esr::analysis {
namespace {

using store::Operation;

UpdateRecord Update(EtId et, std::vector<Operation> ops,
                    LamportTimestamp ts = {}) {
  UpdateRecord u;
  u.et = et;
  u.origin = 0;
  u.ops = std::move(ops);
  u.timestamp = ts;
  return u;
}

TEST(SrCheckerTest, EmptyHistoryIsSerializable) {
  HistoryRecorder h;
  auto result = CheckUpdateSerializability(h, 2);
  EXPECT_TRUE(result.serializable);
  EXPECT_TRUE(result.serial_order.empty());
}

TEST(SrCheckerTest, SameOrderEverywhereIsSerializable) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Write(0, Value(int64_t{1}))}));
  h.RecordUpdateCommit(Update(2, {Operation::Write(0, Value(int64_t{2}))}));
  for (SiteId s = 0; s < 2; ++s) {
    h.RecordApply(1, s, 10);
    h.RecordApply(2, s, 20);
  }
  auto result = CheckUpdateSerializability(h, 2);
  ASSERT_TRUE(result.serializable);
  EXPECT_EQ(result.serial_order, (std::vector<EtId>{1, 2}));
}

TEST(SrCheckerTest, OppositeOrdersOfConflictingWritesAreNotSerializable) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Write(0, Value(int64_t{1}))}));
  h.RecordUpdateCommit(Update(2, {Operation::Write(0, Value(int64_t{2}))}));
  h.RecordApply(1, 0, 10);
  h.RecordApply(2, 0, 20);
  h.RecordApply(2, 1, 10);
  h.RecordApply(1, 1, 20);
  auto result = CheckUpdateSerializability(h, 2);
  EXPECT_FALSE(result.serializable);
  EXPECT_FALSE(result.violation.empty());
}

TEST(SrCheckerTest, CommutingOpsInOppositeOrdersAreFine) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 1)}));
  h.RecordUpdateCommit(Update(2, {Operation::Increment(0, 2)}));
  h.RecordApply(1, 0, 10);
  h.RecordApply(2, 0, 20);
  h.RecordApply(2, 1, 10);
  h.RecordApply(1, 1, 20);
  EXPECT_TRUE(CheckUpdateSerializability(h, 2).serializable);
}

TEST(SrCheckerTest, AbortedUpdatesExcluded) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Write(0, Value(int64_t{1}))}));
  h.RecordUpdateCommit(Update(2, {Operation::Write(0, Value(int64_t{2}))}));
  h.RecordApply(1, 0, 10);
  h.RecordApply(2, 0, 20);
  h.RecordApply(2, 1, 10);
  h.RecordApply(1, 1, 20);
  h.RecordUpdateAborted(2);  // conflict partner compensated away
  EXPECT_TRUE(CheckUpdateSerializability(h, 2).serializable);
}

TEST(SrCheckerTest, WitnessOrderRespectsPrecedence) {
  HistoryRecorder h;
  // 2 before 1 at every site; conflicting writes force 2 -> 1 in the
  // witness despite the smaller id of 1.
  h.RecordUpdateCommit(Update(1, {Operation::Write(0, Value(int64_t{1}))}));
  h.RecordUpdateCommit(Update(2, {Operation::Write(0, Value(int64_t{2}))}));
  for (SiteId s = 0; s < 2; ++s) {
    h.RecordApply(2, s, 10);
    h.RecordApply(1, s, 20);
  }
  auto result = CheckUpdateSerializability(h, 2);
  ASSERT_TRUE(result.serializable);
  EXPECT_EQ(result.serial_order, (std::vector<EtId>{2, 1}));
}

TEST(SrCheckerTest, TimestampTieBreakOrdersUnrelatedUpdates) {
  HistoryRecorder h;
  h.RecordUpdateCommit(Update(1, {Operation::Increment(0, 1)}, {9, 0}));
  h.RecordUpdateCommit(Update(2, {Operation::Increment(1, 1)}, {3, 0}));
  h.RecordApply(1, 0, 10);
  h.RecordApply(2, 0, 20);
  auto result = CheckUpdateSerializability(h, 1);
  ASSERT_TRUE(result.serializable);
  EXPECT_EQ(result.serial_order, (std::vector<EtId>{2, 1}))
      << "independent updates sort by timestamp";
}

TEST(SrCheckerTest, UpdatesConflictHelper) {
  auto a = Update(1, {Operation::Increment(0, 1)});
  auto b = Update(2, {Operation::Increment(0, 2)});
  auto c = Update(3, {Operation::Multiply(0, 2)});
  auto d = Update(4, {Operation::Multiply(1, 2)});
  EXPECT_FALSE(UpdatesConflict(a, b));
  EXPECT_TRUE(UpdatesConflict(a, c));
  EXPECT_FALSE(UpdatesConflict(a, d));
}

TEST(SrCheckerTest, ThreeWayCycleDetected) {
  HistoryRecorder h;
  for (EtId et = 1; et <= 3; ++et) {
    h.RecordUpdateCommit(
        Update(et, {Operation::Write(0, Value(int64_t{et}))}));
  }
  // site 0: 1 < 2 ; site 1: 2 < 3 ; site 2: 3 < 1  -> cycle
  h.RecordApply(1, 0, 1);
  h.RecordApply(2, 0, 2);
  h.RecordApply(2, 1, 1);
  h.RecordApply(3, 1, 2);
  h.RecordApply(3, 2, 1);
  h.RecordApply(1, 2, 2);
  EXPECT_FALSE(CheckUpdateSerializability(h, 3).serializable);
}

}  // namespace
}  // namespace esr::analysis
