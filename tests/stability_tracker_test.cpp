#include "esr/stability_tracker.h"

#include <gtest/gtest.h>

namespace esr::core {
namespace {

TEST(PredTimestampTest, StepsDownWithinCounterThenAcross) {
  EXPECT_EQ(PredTimestamp({5, 3}), (LamportTimestamp{5, 2}));
  LamportTimestamp p = PredTimestamp({5, 0});
  EXPECT_EQ(p.counter, 4);
  EXPECT_LT(p, (LamportTimestamp{5, 0}));
  EXPECT_LT((LamportTimestamp{4, 100}), p);  // pred is the LARGEST below
}

TEST(StabilityTrackerTest, AcksAccumulateUntilAllSites) {
  StabilityTracker t(0, 3);
  t.TrackOutgoing(1, {1, 0});
  EXPECT_FALSE(t.RecordAck(1, 0));
  EXPECT_FALSE(t.RecordAck(1, 1));
  EXPECT_FALSE(t.RecordAck(1, 1));  // duplicate ack does not count twice
  EXPECT_TRUE(t.RecordAck(1, 2));
}

TEST(StabilityTrackerTest, MarkStableFiresCallbackOnce) {
  StabilityTracker t(0, 2);
  int fired = 0;
  t.on_stable = [&](EtId) { ++fired; };
  t.ObserveMset(1, {1, 0}, 0);
  t.MarkStable(1, {1, 0});
  t.MarkStable(1, {1, 0});
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(t.IsStable(1));
  EXPECT_EQ(t.OutstandingCount(), 0);
}

TEST(StabilityTrackerTest, StableNoticeBeforeMsetHandled) {
  StabilityTracker t(0, 2);
  t.MarkStable(5, {3, 1});
  t.ObserveMset(5, {3, 1}, 1);  // late arrival must not resurrect it
  EXPECT_EQ(t.OutstandingCount(), 0);
}

TEST(StabilityTrackerTest, VtncHeldDownByQuietOrigins) {
  StabilityTracker t(0, 3);
  // Origin 1 advanced to 100, origin 2 never spoke: VTNC floor is zero.
  t.ObserveClock(1, {100, 1});
  EXPECT_EQ(t.Vtnc(), kZeroTimestamp);
}

TEST(StabilityTrackerTest, VtncAdvancesWithWatermarks) {
  StabilityTracker t(0, 3);
  t.ObserveClock(1, {100, 1});
  t.ObserveClock(2, {50, 2});
  EXPECT_EQ(t.Vtnc(), (LamportTimestamp{50, 2}));
}

TEST(StabilityTrackerTest, OutstandingMsetCapsVtnc) {
  StabilityTracker t(0, 3);
  t.ObserveClock(1, {100, 1});
  t.ObserveClock(2, {100, 2});
  t.ObserveMset(7, {40, 1}, 1);
  EXPECT_EQ(t.Vtnc(), PredTimestamp({40, 1}));
  t.MarkStable(7, {40, 1});
  EXPECT_EQ(t.Vtnc(), (LamportTimestamp{100, 1}));
}

TEST(StabilityTrackerTest, SelfOutstandingCountsButSelfWatermarkDoesNot) {
  StabilityTracker t(0, 2);
  t.ObserveClock(1, {100, 1});
  // Self never "heartbeats" itself; only its outstanding updates matter.
  EXPECT_EQ(t.Vtnc(), (LamportTimestamp{100, 1}));
  t.TrackOutgoing(3, {30, 0});
  EXPECT_EQ(t.Vtnc(), PredTimestamp({30, 0}));
}

TEST(StabilityTrackerTest, UpdaterSetExcludesQuietReaders) {
  StabilityTracker t(0, 3);
  t.ObserveClock(1, {100, 1});
  // Site 2 is a pure reader; exclude it from the VTNC floor.
  t.SetUpdaterSites({0, 1});
  EXPECT_EQ(t.Vtnc(), (LamportTimestamp{100, 1}));
}

TEST(StabilityTrackerTest, VtncMonotoneUnderInterleavedTraffic) {
  StabilityTracker t(0, 3);
  LamportTimestamp last = t.Vtnc();
  auto check = [&]() {
    LamportTimestamp now = t.Vtnc();
    EXPECT_GE(now, last);
    last = now;
  };
  t.ObserveClock(1, {10, 1});
  check();
  t.ObserveClock(2, {20, 2});
  check();
  t.ObserveMset(1, {15, 1}, 1);
  check();
  t.ObserveClock(1, {30, 1});
  check();
  t.MarkStable(1, {15, 1});
  check();
  t.ObserveMset(2, {25, 2}, 2);
  check();
  t.MarkStable(2, {25, 2});
  check();
}

}  // namespace
}  // namespace esr::core
