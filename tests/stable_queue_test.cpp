#include "msg/stable_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace esr::msg {
namespace {

class StableQueueTest : public ::testing::Test {
 protected:
  void Build(sim::NetworkConfig net_config, StableQueueConfig queue_config) {
    net_ = std::make_unique<sim::Network>(&sim_, 3, net_config, /*seed=*/5);
    for (SiteId s = 0; s < 3; ++s) {
      mailboxes_.push_back(std::make_unique<Mailbox>(net_.get(), s));
      queues_.push_back(std::make_unique<StableQueueManager>(
          &sim_, mailboxes_.back().get(), queue_config));
      SiteId site = s;
      queues_.back()->SetDeliverHandler(
          [this, site](SiteId src, const std::any& payload) {
            delivered_[site].emplace_back(src,
                                          std::any_cast<int>(payload));
          });
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<StableQueueManager>> queues_;
  std::vector<std::pair<SiteId, int>> delivered_[3];
};

TEST_F(StableQueueTest, DeliversExactlyOnceOnCleanNetwork) {
  Build(sim::NetworkConfig{}, StableQueueConfig{});
  for (int i = 0; i < 5; ++i) queues_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(delivered_[1][i].second, i);
  EXPECT_EQ(queues_[0]->UnackedCount(), 0);
}

TEST_F(StableQueueTest, SurvivesHeavyLoss) {
  sim::NetworkConfig net;
  net.loss_probability = 0.5;
  Build(net, StableQueueConfig{});
  for (int i = 0; i < 20; ++i) queues_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 20u);
  // FIFO preserved despite loss and retransmission.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(delivered_[1][i].second, i);
  EXPECT_GT(queues_[0]->counters().Get("queue.retransmit"), 0);
  EXPECT_EQ(queues_[0]->UnackedCount(), 0);
}

TEST_F(StableQueueTest, FifoHoldsBackGaps) {
  sim::NetworkConfig net;
  net.jitter_us = 5'000;  // heavy reordering
  Build(net, StableQueueConfig{});
  for (int i = 0; i < 30; ++i) queues_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(delivered_[1][i].second, i);
}

TEST_F(StableQueueTest, UnorderedModeDeliversOnArrival) {
  sim::NetworkConfig net;
  net.jitter_us = 5'000;
  StableQueueConfig qc;
  qc.fifo = false;
  Build(net, qc);
  for (int i = 0; i < 30; ++i) queues_[0]->Send(1, i);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 30u);
  std::vector<int> values;
  for (auto& [_, v] : delivered_[1]) values.push_back(v);
  std::sort(values.begin(), values.end());
  for (int i = 0; i < 30; ++i) EXPECT_EQ(values[i], i);  // each exactly once
}

TEST_F(StableQueueTest, ReceiverCrashDelaysButDeliversAfterRestart) {
  Build(sim::NetworkConfig{}, StableQueueConfig{});
  net_->SetSiteDown(1);
  queues_[0]->Send(1, 7);
  sim_.RunUntil(100'000);
  EXPECT_TRUE(delivered_[1].empty());
  EXPECT_GT(queues_[0]->UnackedCount(), 0);
  net_->SetSiteUp(1);
  sim_.Run();
  ASSERT_EQ(delivered_[1].size(), 1u);
  EXPECT_EQ(delivered_[1][0].second, 7);
}

TEST_F(StableQueueTest, PartitionHealsAndDeliveryResumes) {
  Build(sim::NetworkConfig{}, StableQueueConfig{});
  net_->SetPartition({{0}, {1, 2}});
  queues_[0]->Send(2, 99);
  sim_.RunUntil(200'000);
  EXPECT_TRUE(delivered_[2].empty());
  net_->HealPartition();
  sim_.Run();
  ASSERT_EQ(delivered_[2].size(), 1u);
}

TEST_F(StableQueueTest, BroadcastReachesAllOthers) {
  Build(sim::NetworkConfig{}, StableQueueConfig{});
  queues_[1]->Broadcast(5);
  sim_.Run();
  EXPECT_EQ(delivered_[0].size(), 1u);
  EXPECT_EQ(delivered_[2].size(), 1u);
  EXPECT_TRUE(delivered_[1].empty());
}

TEST_F(StableQueueTest, DuplicateDataIsAckedButNotRedelivered) {
  // Loss of acks forces retransmission; the receiver must dedup.
  sim::NetworkConfig net;
  net.loss_probability = 0.3;
  Build(net, StableQueueConfig{});
  for (int i = 0; i < 10; ++i) queues_[0]->Send(1, i);
  sim_.Run();
  EXPECT_EQ(delivered_[1].size(), 10u);
}

TEST_F(StableQueueTest, EnvelopePayloadsRouteThroughMailbox) {
  Build(sim::NetworkConfig{}, StableQueueConfig{});
  // Fresh manager without a custom deliver handler uses the default
  // mailbox dispatch.
  int got = 0;
  mailboxes_[2]->RegisterHandler(
      200, [&](SiteId, const std::any& body) { got = std::any_cast<int>(body); });
  StableQueueManager fresh(&sim_, mailboxes_[2].get(), StableQueueConfig{});
  // Reuse site 0's queue to send an Envelope payload to site 2. Site 2's
  // *fresh* manager replaced the kQueueData handler, so it receives it.
  queues_[0]->Send(2, Envelope{200, 123});
  sim_.Run();
  EXPECT_EQ(got, 123);
}

}  // namespace
}  // namespace esr::msg
