#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace esr {
namespace {

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
  EXPECT_EQ(s.Percentile(50), 0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SummaryTest, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 99);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1);  // rank 0 clamps to first
}

TEST(SummaryTest, PercentileAfterInterleavedAdds) {
  Summary s;
  s.Add(5);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5);
  s.Add(1);
  s.Add(9);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5);
  EXPECT_DOUBLE_EQ(s.max(), 9);
}

TEST(SummaryTest, InterleavedAddPercentileMatchesFullSort) {
  // Regression for the sorted-prefix incremental Percentile: interleaving
  // Adds with Percentile reads must give the same answers as sorting the
  // whole sample set from scratch every time.
  Summary s;
  std::vector<double> all;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(rng.Uniform(0, 10'000));
    s.Add(v);
    all.push_back(v);
    if (i % 7 == 0) {
      std::vector<double> sorted = all;
      std::sort(sorted.begin(), sorted.end());
      for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
        // Nearest-rank definition, matching Summary::Percentile.
        const size_t rank = static_cast<size_t>(
            std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
        EXPECT_DOUBLE_EQ(s.Percentile(p), sorted[rank == 0 ? 0 : rank - 1])
            << "p" << p << " after " << all.size() << " adds";
      }
      EXPECT_DOUBLE_EQ(s.min(), sorted.front());
      EXPECT_DOUBLE_EQ(s.max(), sorted.back());
    }
  }
}

TEST(SummaryTest, ToStringMentionsCount) {
  Summary s;
  s.Add(1);
  EXPECT_NE(s.ToString().find("n=1"), std::string::npos);
}

TEST(CountersTest, IncrementAndGet) {
  Counters c;
  c.Increment("a");
  c.Increment("a", 4);
  c.Increment("b");
  EXPECT_EQ(c.Get("a"), 5);
  EXPECT_EQ(c.Get("b"), 1);
  EXPECT_EQ(c.Get("missing"), 0);
}

TEST(CountersTest, SnapshotSorted) {
  Counters c;
  c.Increment("z");
  c.Increment("a");
  auto snap = c.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "z");
}

TEST(CountersTest, ToStringContainsEntries) {
  Counters c;
  c.Increment("net.sent", 3);
  EXPECT_NE(c.ToString().find("net.sent=3"), std::string::npos);
}

}  // namespace
}  // namespace esr
