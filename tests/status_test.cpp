#include "common/status.h"

#include <gtest/gtest.h>

namespace esr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InconsistencyLimit("x").code(),
            StatusCode::kInconsistencyLimit);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("boom").message(), "boom");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::Aborted("").IsAborted());
  EXPECT_TRUE(Status::InconsistencyLimit("").IsInconsistencyLimit());
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_FALSE(Status().IsUnavailable());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::Aborted("deadlock").ToString(), "aborted: deadlock");
  EXPECT_EQ(Status::NotFound("").ToString(), "not_found");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("a"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Unavailable("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailsThenPropagates() {
  ESR_RETURN_IF_ERROR(Status::Aborted("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(FailsThenPropagates().IsAborted());
}

}  // namespace
}  // namespace esr
