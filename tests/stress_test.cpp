// Randomized stress tests of the substrates, checking structural
// invariants rather than example-based expectations:
//   * lock manager: no two incompatible holders ever coexist; every
//     transaction eventually terminates (granted or aborted);
//   * stable queues: exactly-once, order-preserving delivery under
//     simultaneous loss, jitter, crashes and partitions;
//   * full system: a random soup of updates, queries, crashes and
//     partitions still converges to the serial oracle.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/query_checker.h"
#include "analysis/sr_checker.h"
#include "cc/lock_manager.h"
#include "common/rng.h"
#include "msg/stable_queue.h"
#include "test_util.h"

namespace esr {
namespace {

// ---------------------------------------------------------------------------
// Lock manager stress.
// ---------------------------------------------------------------------------

struct LockStressCase {
  cc::CompatibilityTable table;
  uint64_t seed;
};

class LockManagerStress : public ::testing::TestWithParam<LockStressCase> {};

TEST_P(LockManagerStress, HoldersAlwaysPairwiseCompatible) {
  const auto& param = GetParam();
  cc::LockManager lm(param.table);
  Rng rng(param.seed);

  struct Txn {
    std::vector<std::pair<cc::LockMode, store::OpKind>> held;
    std::vector<ObjectId> held_objects;
    bool live = false;
  };
  std::map<EtId, Txn> txns;
  // Shadow holder table to verify the manager's grants.
  std::map<ObjectId, std::vector<std::tuple<EtId, cc::LockMode, store::OpKind>>>
      holders;

  auto verify = [&]() {
    for (const auto& [object, hs] : holders) {
      for (size_t i = 0; i < hs.size(); ++i) {
        for (size_t j = 0; j < hs.size(); ++j) {
          if (i == j) continue;
          const auto& [t1, m1, k1] = hs[i];
          const auto& [t2, m2, k2] = hs[j];
          if (t1 == t2) continue;
          ASSERT_TRUE(cc::LockCompatible(param.table, m1, k1, m2, k2))
              << "incompatible co-holders on object " << object;
        }
      }
    }
  };

  const cc::LockMode modes[] = {cc::LockMode::kReadUpdate,
                                cc::LockMode::kWriteUpdate,
                                cc::LockMode::kReadQuery};
  const store::OpKind kinds[] = {store::OpKind::kRead,
                                 store::OpKind::kIncrement,
                                 store::OpKind::kMultiply,
                                 store::OpKind::kWrite};
  EtId next_txn = 1;
  for (int step = 0; step < 4'000; ++step) {
    const int64_t action = rng.Uniform(0, 2);
    if (action <= 1) {
      // Try-acquire for a random (possibly new) transaction.
      EtId txn;
      if (!txns.empty() && rng.Bernoulli(0.5)) {
        auto it = txns.begin();
        std::advance(it, rng.Uniform(0, static_cast<int64_t>(txns.size()) - 1));
        txn = it->first;
      } else {
        txn = next_txn++;
      }
      const ObjectId object = rng.Uniform(0, 5);
      const cc::LockMode mode = modes[rng.Uniform(0, 2)];
      const store::OpKind kind =
          mode == cc::LockMode::kWriteUpdate ? kinds[rng.Uniform(1, 3)]
                                             : store::OpKind::kRead;
      Status s = lm.Acquire(txn, object, mode, kind, nullptr);
      if (s.ok()) {
        txns[txn].live = true;
        holders[object].emplace_back(txn, mode, kind);
        verify();
      }
    } else if (!txns.empty()) {
      // Release a random transaction entirely.
      auto it = txns.begin();
      std::advance(it, rng.Uniform(0, static_cast<int64_t>(txns.size()) - 1));
      const EtId txn = it->first;
      lm.ReleaseAll(txn);
      txns.erase(it);
      for (auto& [object, hs] : holders) {
        hs.erase(std::remove_if(hs.begin(), hs.end(),
                                [txn](const auto& h) {
                                  return std::get<0>(h) == txn;
                                }),
                 hs.end());
      }
    }
  }
  // Drain: everything releasable, no waiters (try-lock mode), counts sane.
  for (const auto& [txn, _] : txns) lm.ReleaseAll(txn);
  EXPECT_EQ(lm.WaiterCount(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Tables, LockManagerStress,
    ::testing::Values(
        LockStressCase{cc::CompatibilityTable::kStrict2PL, 1},
        LockStressCase{cc::CompatibilityTable::kOrdupEt, 2},
        LockStressCase{cc::CompatibilityTable::kCommuEt, 3},
        LockStressCase{cc::CompatibilityTable::kStrict2PL, 4},
        LockStressCase{cc::CompatibilityTable::kOrdupEt, 5},
        LockStressCase{cc::CompatibilityTable::kCommuEt, 6}),
    [](const ::testing::TestParamInfo<LockStressCase>& info) {
      const char* name =
          info.param.table == cc::CompatibilityTable::kStrict2PL ? "strict"
          : info.param.table == cc::CompatibilityTable::kOrdupEt ? "ordup"
                                                                 : "commu";
      return std::string(name) + "_seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// Stable queue stress.
// ---------------------------------------------------------------------------

TEST(StableQueueStress, ExactlyOnceInOrderUnderChaos) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    sim::Simulator sim;
    sim::NetworkConfig net_config;
    net_config.loss_probability = 0.35;
    net_config.jitter_us = 6'000;
    sim::Network net(&sim, 3, net_config, seed);
    std::vector<std::unique_ptr<msg::Mailbox>> mailboxes;
    std::vector<std::unique_ptr<msg::StableQueueManager>> queues;
    std::vector<std::vector<int>> delivered(3);
    for (SiteId s = 0; s < 3; ++s) {
      mailboxes.push_back(std::make_unique<msg::Mailbox>(&net, s));
      queues.push_back(std::make_unique<msg::StableQueueManager>(
          &sim, mailboxes.back().get(), msg::StableQueueConfig{}));
      queues.back()->SetDeliverHandler(
          [&delivered, s](SiteId, const std::any& payload) {
            delivered[s].push_back(std::any_cast<int>(payload));
          });
    }
    // Crashes and a partition in the middle of the stream.
    sim::FailureInjector inject(&sim, &net, seed * 7);
    inject.ScheduleCrash(sim::CrashSpec{1, 30'000, 120'000});
    inject.SchedulePartition(
        sim::PartitionSpec{{{0}, {1, 2}}, 200'000, 320'000});

    Rng rng(seed);
    for (int i = 0; i < 100; ++i) {
      sim.ScheduleAt(i * 4'000, [&queues, i]() {
        queues[0]->Send(1, i);
        queues[0]->Send(2, i);
      });
    }
    sim.Run();
    for (SiteId s = 1; s <= 2; ++s) {
      ASSERT_EQ(delivered[s].size(), 100u) << "site " << s;
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(delivered[s][i], i) << "fifo broken at site " << s;
      }
    }
    EXPECT_EQ(queues[0]->UnackedCount(), 0);
  }
}

// ---------------------------------------------------------------------------
// Whole-system chaos soup.
// ---------------------------------------------------------------------------

struct SoupCase {
  core::Method method;
  uint64_t seed;
};

class SystemChaos : public ::testing::TestWithParam<SoupCase> {};

TEST_P(SystemChaos, ConvergesToOracleThroughCrashesAndPartitions) {
  const auto& param = GetParam();
  core::SystemConfig config;
  config.method = param.method;
  config.num_sites = 4;
  config.seed = param.seed;
  config.network.loss_probability = 0.1;
  config.network.jitter_us = 3'000;
  core::ReplicatedSystem system(config);

  system.failures().ScheduleCrash(sim::CrashSpec{2, 40'000, 150'000});
  system.failures().SchedulePartition(
      sim::PartitionSpec{{{0, 1}, {2, 3}}, 200'000, 350'000});

  Rng rng(param.seed * 13 + 1);
  const bool ritu = param.method == core::Method::kRituMulti ||
                    param.method == core::Method::kRituSingle;
  std::vector<EtId> tentative;
  const bool compe = param.method == core::Method::kCompe;
  int query_count = 0;
  for (int i = 0; i < 50; ++i) {
    const SiteId origin = static_cast<SiteId>(rng.Uniform(0, 3));
    std::vector<store::Operation> ops;
    const ObjectId object = rng.Uniform(0, 7);
    if (ritu) {
      ops.push_back(store::Operation::TimestampedWrite(
          object, Value(rng.Uniform(0, 100)), kZeroTimestamp));
    } else {
      ops.push_back(store::Operation::Increment(object, rng.Uniform(1, 5)));
    }
    auto r = system.SubmitUpdate(origin, std::move(ops));
    if (r.ok() && compe) tentative.push_back(*r);
    // Interleave bounded queries; their completion is not required while
    // partitioned, but none may crash the system.
    if (rng.Bernoulli(0.3)) {
      const EtId q = system.BeginQuery(static_cast<SiteId>(rng.Uniform(0, 3)),
                                       rng.Uniform(0, 3));
      system.Read(q, rng.Uniform(0, 7), [&system, q, &query_count](
                                            Result<Value> v) {
        if (v.ok()) ++query_count;
        (void)system.EndQuery(q);
      });
    }
    system.RunFor(rng.Uniform(2'000, 12'000));
  }
  for (size_t i = 0; i < tentative.size(); ++i) {
    (void)system.Decide(tentative[i], i % 5 != 0);
  }
  system.RunUntilQuiescent();

  ASSERT_TRUE(system.Converged());
  auto sr = analysis::CheckUpdateSerializability(system.history(), 4);
  ASSERT_TRUE(sr.serializable) << sr.violation;
  auto oracle =
      analysis::ComputeSerialState(system.history(), sr.serial_order);
  for (const auto& [object, value] : oracle) {
    EXPECT_EQ(system.SiteValue(0, object), value) << "object " << object;
  }
  EXPECT_GT(query_count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Soup, SystemChaos,
    ::testing::Values(SoupCase{core::Method::kOrdup, 41},
                      SoupCase{core::Method::kOrdupTs, 43},
                      SoupCase{core::Method::kCommu, 47},
                      SoupCase{core::Method::kRituMulti, 53},
                      SoupCase{core::Method::kRituSingle, 59},
                      SoupCase{core::Method::kCompe, 61},
                      SoupCase{core::Method::kQuasiCopy, 67}),
    [](const ::testing::TestParamInfo<SoupCase>& info) {
      std::string name(core::MethodToString(info.param.method));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace esr
