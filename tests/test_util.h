#ifndef ESR_TESTS_TEST_UTIL_H_
#define ESR_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "esr/replicated_system.h"

namespace esr::test {

/// Strict Prometheus text-format (0.0.4) check used by the golden-file and
/// exporter tests. Returns "" when `text` is a well-formed exposition, else
/// a one-line description of the first violation. Checks: line shapes
/// (HELP/TYPE comments, `name{labels} value` samples), metric-name and
/// label syntax with escape handling, one TYPE per family declared before
/// its samples, no duplicate series, parseable sample values, histogram
/// bucket runs cumulative with a final +Inf bucket equal to `_count`.
inline std::string ValidatePrometheusExposition(const std::string& text) {
  if (text.empty()) return "";  // an empty exposition is trivially valid
  if (text.back() != '\n') return "exposition does not end with a newline";

  auto valid_name = [](const std::string& s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
        s[0] != ':') {
      return false;
    }
    for (char c : s) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != ':') {
        return false;
      }
    }
    return true;
  };
  /// Family a sample name belongs to, given the declared TYPEs (histogram
  /// samples carry _bucket/_sum/_count suffixes).
  auto family_of = [](const std::string& sample,
                      const std::map<std::string, std::string>& types) {
    if (types.count(sample) != 0) return sample;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (sample.size() > len &&
          sample.compare(sample.size() - len, len, suffix) == 0) {
        const std::string base = sample.substr(0, sample.size() - len);
        if (types.count(base) != 0) return base;
      }
    }
    return std::string();
  };

  std::map<std::string, std::string> types;  // family -> counter|gauge|...
  std::set<std::string> families_with_samples;
  std::set<std::string> seen_series;
  // State of the current histogram bucket run (one series' le sequence).
  std::string run_key;  // name + labels-without-le; "" = no open run
  double run_prev = 0;
  bool run_saw_inf = false;
  double run_inf_value = 0;

  size_t pos = 0;
  int lineno = 0;
  while (pos < text.size()) {
    ++lineno;
    const size_t eol = text.find('\n', pos);
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (line.empty()) return "blank line" + where;

    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name kind"; other comments pass.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line.rfind("# TYPE ", 0) == 0;
        const size_t name_at = 7;
        const size_t sp = line.find(' ', name_at);
        const std::string name = line.substr(
            name_at, sp == std::string::npos ? std::string::npos
                                             : sp - name_at);
        if (!valid_name(name)) return "bad metric name in comment" + where;
        if (is_type) {
          const std::string kind =
              sp == std::string::npos ? "" : line.substr(sp + 1);
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            return "unknown TYPE kind '" + kind + "'" + where;
          }
          if (types.count(name) != 0) return "duplicate TYPE" + where;
          if (families_with_samples.count(name) != 0) {
            return "TYPE after samples of " + name + where;
          }
          types[name] = kind;
        }
      }
      continue;
    }

    // Sample line: name[{labels}] value
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    const std::string name = line.substr(0, i);
    if (!valid_name(name)) return "bad sample name" + where;
    std::string labels;
    std::string le_value;
    if (i < line.size() && line[i] == '{') {
      const size_t open = i;
      ++i;
      while (i < line.size() && line[i] != '}') {
        // label name
        const size_t lname_at = i;
        while (i < line.size() && line[i] != '=') ++i;
        const std::string lname = line.substr(lname_at, i - lname_at);
        if (!valid_name(lname) || lname[0] == ':') {
          return "bad label name" + where;
        }
        if (i + 1 >= line.size() || line[i + 1] != '"') {
          return "label value not quoted" + where;
        }
        i += 2;
        std::string lvalue;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size() ||
                (line[i + 1] != '\\' && line[i + 1] != '"' &&
                 line[i + 1] != 'n')) {
              return "bad escape in label value" + where;
            }
            lvalue += line[i + 1];
            i += 2;
          } else {
            lvalue += line[i];
            ++i;
          }
        }
        if (i >= line.size()) return "unterminated label value" + where;
        ++i;  // closing quote
        if (lname == "le") le_value = lvalue;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size()) return "unterminated label set" + where;
      ++i;  // '}'
      labels = line.substr(open, i - open);
    }
    if (i >= line.size() || line[i] != ' ') {
      return "missing value separator" + where;
    }
    const std::string value_str = line.substr(i + 1);
    double value = 0;
    if (value_str == "+Inf") {
      value = std::numeric_limits<double>::infinity();
    } else if (value_str == "-Inf") {
      value = -std::numeric_limits<double>::infinity();
    } else if (value_str == "NaN") {
      value = 0;
    } else {
      char* end = nullptr;
      value = std::strtod(value_str.c_str(), &end);
      if (value_str.empty() || end == nullptr || *end != '\0') {
        return "unparseable sample value '" + value_str + "'" + where;
      }
    }

    const std::string family = family_of(name, types);
    if (family.empty()) return "sample " + name + " has no TYPE" + where;
    families_with_samples.insert(family);
    if (!seen_series.insert(name + labels).second) {
      return "duplicate series " + name + labels + where;
    }

    // Histogram bucket runs: per series, cumulative le buckets ending in
    // +Inf, with _count equal to the +Inf bucket.
    const bool is_bucket =
        types[family] == "histogram" && name == family + "_bucket";
    if (is_bucket) {
      // Strip the le label so the run key identifies the series.
      std::string key = name;
      const size_t le_at = labels.find("le=\"");
      if (le_at == std::string::npos) {
        return "histogram bucket without le label" + where;
      }
      key += labels.substr(0, le_at) +
             labels.substr(labels.find_first_of(",}", le_at));
      if (key != run_key) {
        if (!run_key.empty() && !run_saw_inf) {
          return "bucket run without +Inf before " + name + labels + where;
        }
        run_key = key;
        run_prev = 0;
        run_saw_inf = false;
      }
      if (value + 1e-9 < run_prev) {
        return "non-cumulative bucket " + name + labels + where;
      }
      run_prev = value;
      if (le_value == "+Inf") {
        run_saw_inf = true;
        run_inf_value = value;
      }
    } else {
      if (!run_key.empty()) {
        if (!run_saw_inf) return "bucket run without +Inf bucket" + where;
        if (name == family + "_count" && value != run_inf_value) {
          return family + "_count != +Inf bucket" + where;
        }
        if (name != family + "_sum" && name != family + "_count") {
          run_key.clear();
        }
      }
      if (name == family + "_count") run_key.clear();
    }
  }
  if (!run_key.empty() && !run_saw_inf) {
    return "exposition ends mid bucket run";
  }
  return "";
}

/// Builds a default SystemConfig for a method.
inline core::SystemConfig Config(core::Method method, int num_sites = 3,
                                 uint64_t seed = 42) {
  core::SystemConfig config;
  config.method = method;
  config.num_sites = num_sites;
  config.seed = seed;
  return config;
}

/// Submits an update and returns its ET id, failing the test on admission
/// errors.
inline EtId MustSubmit(core::ReplicatedSystem& system, SiteId origin,
                       std::vector<store::Operation> ops,
                       core::CommitFn done = nullptr) {
  auto result = system.SubmitUpdate(origin, std::move(ops), std::move(done));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : kInvalidEtId;
}

/// Runs a whole query ET synchronously from the test's point of view:
/// begins the query, issues the reads back-to-back through the retrying
/// Read API (driving the simulator until each completes), ends the query,
/// and returns the values. `inconsistency_out`, if non-null, receives the
/// query's final counter.
inline std::vector<Value> RunQuery(core::ReplicatedSystem& system,
                                   SiteId site, int64_t epsilon,
                                   const std::vector<ObjectId>& objects,
                                   int64_t* inconsistency_out = nullptr,
                                   int64_t* restarts_out = nullptr) {
  const EtId q = system.BeginQuery(site, epsilon);
  std::vector<Value> values;
  for (ObjectId object : objects) {
    bool done = false;
    system.Read(q, object, [&](Result<Value> v) {
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      if (v.ok()) values.push_back(*v);
      done = true;
    });
    // Drive the simulator until this read resolves (bounded).
    int64_t guard = 0;
    while (!done && guard++ < 10'000'000) {
      if (!system.simulator().Step()) break;
    }
    EXPECT_TRUE(done) << "read never completed";
    if (!done) break;
  }
  const core::QueryState* state = system.query_state(q);
  if (state != nullptr) {
    if (inconsistency_out != nullptr) *inconsistency_out = state->inconsistency;
    if (restarts_out != nullptr) *restarts_out = state->restarts;
  }
  EXPECT_TRUE(system.EndQuery(q).ok());
  return values;
}

}  // namespace esr::test

#endif  // ESR_TESTS_TEST_UTIL_H_
