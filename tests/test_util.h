#ifndef ESR_TESTS_TEST_UTIL_H_
#define ESR_TESTS_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "esr/replicated_system.h"

namespace esr::test {

/// Builds a default SystemConfig for a method.
inline core::SystemConfig Config(core::Method method, int num_sites = 3,
                                 uint64_t seed = 42) {
  core::SystemConfig config;
  config.method = method;
  config.num_sites = num_sites;
  config.seed = seed;
  return config;
}

/// Submits an update and returns its ET id, failing the test on admission
/// errors.
inline EtId MustSubmit(core::ReplicatedSystem& system, SiteId origin,
                       std::vector<store::Operation> ops,
                       core::CommitFn done = nullptr) {
  auto result = system.SubmitUpdate(origin, std::move(ops), std::move(done));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? *result : kInvalidEtId;
}

/// Runs a whole query ET synchronously from the test's point of view:
/// begins the query, issues the reads back-to-back through the retrying
/// Read API (driving the simulator until each completes), ends the query,
/// and returns the values. `inconsistency_out`, if non-null, receives the
/// query's final counter.
inline std::vector<Value> RunQuery(core::ReplicatedSystem& system,
                                   SiteId site, int64_t epsilon,
                                   const std::vector<ObjectId>& objects,
                                   int64_t* inconsistency_out = nullptr,
                                   int64_t* restarts_out = nullptr) {
  const EtId q = system.BeginQuery(site, epsilon);
  std::vector<Value> values;
  for (ObjectId object : objects) {
    bool done = false;
    system.Read(q, object, [&](Result<Value> v) {
      EXPECT_TRUE(v.ok()) << v.status().ToString();
      if (v.ok()) values.push_back(*v);
      done = true;
    });
    // Drive the simulator until this read resolves (bounded).
    int64_t guard = 0;
    while (!done && guard++ < 10'000'000) {
      if (!system.simulator().Step()) break;
    }
    EXPECT_TRUE(done) << "read never completed";
    if (!done) break;
  }
  const core::QueryState* state = system.query_state(q);
  if (state != nullptr) {
    if (inconsistency_out != nullptr) *inconsistency_out = state->inconsistency;
    if (restarts_out != nullptr) *restarts_out = state->restarts;
  }
  EXPECT_TRUE(system.EndQuery(q).ok());
  return values;
}

}  // namespace esr::test

#endif  // ESR_TESTS_TEST_UTIL_H_
