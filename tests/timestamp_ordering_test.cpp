#include "cc/timestamp_ordering.h"

#include <gtest/gtest.h>

namespace esr::cc {
namespace {

TEST(TimestampOrderingTest, InOrderAccessesAccepted) {
  TimestampOrdering to;
  EXPECT_TRUE(to.UpdateRead({1, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateWrite({2, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateRead({3, 0}, 0).ok());
  EXPECT_EQ(to.WriteTimestamp(0), (LamportTimestamp{2, 0}));
  EXPECT_EQ(to.ReadTimestamp(0), (LamportTimestamp{3, 0}));
}

TEST(TimestampOrderingTest, StaleReadRejected) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateRead({5, 0}, 0).IsAborted());
}

TEST(TimestampOrderingTest, StaleWriteBehindReadRejected) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateRead({10, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateWrite({5, 0}, 0).IsAborted());
}

TEST(TimestampOrderingTest, StaleWriteBehindWriteRejectedWithoutThomas) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateWrite({5, 0}, 0).IsAborted());
}

TEST(TimestampOrderingTest, ThomasWriteRuleSkipsObsoleteWrite) {
  TimestampOrdering to;
  to.set_thomas_write_rule(true);
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateWrite({5, 0}, 0).ok());
  EXPECT_EQ(to.WriteTimestamp(0), (LamportTimestamp{10, 0}));
}

TEST(TimestampOrderingTest, QueryReadNeverAborts) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  // Behind the write: one unit of inconsistency, not an abort.
  EXPECT_EQ(to.QueryReadInconsistency({5, 0}, 0), 1);
  // In order: free.
  EXPECT_EQ(to.QueryReadInconsistency({11, 0}, 0), 0);
  // Untouched object: free.
  EXPECT_EQ(to.QueryReadInconsistency({1, 0}, 99), 0);
}

TEST(TimestampOrderingTest, QueryReadDoesNotBlockUpdates) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  (void)to.QueryReadInconsistency({50, 0}, 0);
  // The query's high timestamp must not have been recorded as a read:
  // an update write at 20 still succeeds.
  EXPECT_TRUE(to.UpdateWrite({20, 0}, 0).ok());
}

TEST(TimestampOrderingTest, PerObjectIsolation) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  EXPECT_TRUE(to.UpdateWrite({5, 0}, 1).ok()) << "other object unaffected";
}

TEST(TimestampOrderingTest, ResetClearsState) {
  TimestampOrdering to;
  ASSERT_TRUE(to.UpdateWrite({10, 0}, 0).ok());
  to.Reset();
  EXPECT_TRUE(to.UpdateWrite({1, 0}, 0).ok());
}

}  // namespace
}  // namespace esr::cc
