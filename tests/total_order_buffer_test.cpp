#include "msg/total_order_buffer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace esr::msg {
namespace {

TEST(TotalOrderBufferTest, ReleasesInOrderDespiteArrivalOrder) {
  std::vector<SequenceNumber> applied;
  TotalOrderBuffer buffer(
      [&](SequenceNumber seq, const std::any&) { applied.push_back(seq); });
  buffer.Offer(3, {});
  buffer.Offer(1, {});
  EXPECT_EQ(applied, (std::vector<SequenceNumber>{1}));
  buffer.Offer(2, {});
  EXPECT_EQ(applied, (std::vector<SequenceNumber>{1, 2, 3}));
  EXPECT_EQ(buffer.Watermark(), 3);
  EXPECT_EQ(buffer.NextExpected(), 4);
}

TEST(TotalOrderBufferTest, DuplicatesIgnored) {
  int applied = 0;
  TotalOrderBuffer buffer(
      [&](SequenceNumber, const std::any&) { ++applied; });
  buffer.Offer(1, {});
  buffer.Offer(1, {});
  buffer.Offer(2, {});
  buffer.Offer(2, {});
  EXPECT_EQ(applied, 2);
}

TEST(TotalOrderBufferTest, HeldCountReflectsGaps) {
  TotalOrderBuffer buffer([](SequenceNumber, const std::any&) {});
  buffer.Offer(5, {});
  buffer.Offer(3, {});
  EXPECT_EQ(buffer.HeldCount(), 2);
  buffer.Offer(1, {});
  EXPECT_EQ(buffer.HeldCount(), 2);  // 3 and 5 still gapped (missing 2, 4)
  buffer.Offer(2, {});
  EXPECT_EQ(buffer.HeldCount(), 1);  // 5 waits for 4
}

TEST(TotalOrderBufferTest, PauseHoldsReleasesResumeDrains) {
  std::vector<SequenceNumber> applied;
  TotalOrderBuffer buffer(
      [&](SequenceNumber seq, const std::any&) { applied.push_back(seq); });
  buffer.Offer(1, {});
  buffer.Pause();
  buffer.Offer(2, {});
  buffer.Offer(3, {});
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_EQ(buffer.Watermark(), 1);
  buffer.Resume();
  EXPECT_EQ(applied, (std::vector<SequenceNumber>{1, 2, 3}));
}

TEST(TotalOrderBufferTest, PayloadPassedThrough) {
  std::string got;
  TotalOrderBuffer buffer([&](SequenceNumber, const std::any& p) {
    got = std::any_cast<std::string>(p);
  });
  buffer.Offer(1, std::string("payload"));
  EXPECT_EQ(got, "payload");
}

TEST(TotalOrderBufferTest, LateDuplicateOfAppliedSeqIgnored) {
  int applied = 0;
  TotalOrderBuffer buffer(
      [&](SequenceNumber, const std::any&) { ++applied; });
  buffer.Offer(1, {});
  buffer.Offer(2, {});
  buffer.Offer(1, {});  // already applied
  EXPECT_EQ(applied, 2);
}

}  // namespace
}  // namespace esr::msg
