#include "analysis/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "test_util.h"

namespace esr::analysis {
namespace {

using core::Method;
using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

int CountLines(const std::string& s) {
  int n = 0;
  for (char c : s) n += c == '\n';
  return n;
}

TEST(TraceExportTest, EmptyHistoryExportsNothing) {
  HistoryRecorder h;
  EXPECT_TRUE(ExportHistoryJsonl(h, 3).empty());
}

TEST(TraceExportTest, EventsOnePerLine) {
  core::ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  RunQuery(system, 1, core::kUnboundedEpsilon, {0});
  const std::string jsonl = ExportHistoryJsonl(system.history(), 3);
  // 1 update + 3 applies + 1 read + 1 query = 6 lines.
  EXPECT_EQ(CountLines(jsonl), 6);
  EXPECT_NE(jsonl.find("\"kind\":\"update\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"apply\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"read\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"query\""), std::string::npos);
  EXPECT_NE(jsonl.find("increment(obj=0, 5)"), std::string::npos);
}

TEST(TraceExportTest, AbortedUpdatesFlagged) {
  core::ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(et, false).ok());
  system.RunUntilQuiescent();
  const std::string jsonl = ExportHistoryJsonl(system.history(), 3);
  EXPECT_NE(jsonl.find("\"aborted\":true"), std::string::npos);
}

TEST(TraceExportTest, StringValuesEscaped) {
  HistoryRecorder h;
  ReadRecord r;
  r.query = 1;
  r.value = Value(std::string("say \"hi\"\n"));
  h.RecordRead(r);
  const std::string jsonl = ExportHistoryJsonl(h, 1);
  EXPECT_NE(jsonl.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(jsonl.find("\\n"), std::string::npos);
  // Exactly one newline: the record terminator.
  EXPECT_EQ(CountLines(jsonl), 1);
}

TEST(TraceExportTest, WritesFile) {
  core::ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  const std::string path = ::testing::TempDir() + "/esr_trace_test.jsonl";
  ASSERT_TRUE(WriteHistoryJsonl(system.history(), 3, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ExportHistoryJsonl(system.history(), 3));
  std::remove(path.c_str());
}

TEST(TraceExportTest, UnwritablePathFails) {
  HistoryRecorder h;
  EXPECT_FALSE(WriteHistoryJsonl(h, 1, "/nonexistent-dir/x.jsonl").ok());
}

}  // namespace
}  // namespace esr::analysis
