#include "analysis/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "test_util.h"

namespace esr::analysis {
namespace {

using core::Method;
using store::Operation;
using test::Config;
using test::MustSubmit;
using test::RunQuery;

int CountLines(const std::string& s) {
  int n = 0;
  for (char c : s) n += c == '\n';
  return n;
}

TEST(TraceExportTest, EmptyHistoryExportsNothing) {
  HistoryRecorder h;
  EXPECT_TRUE(ExportHistoryJsonl(h, 3).empty());
}

TEST(TraceExportTest, EventsOnePerLine) {
  core::ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  RunQuery(system, 1, core::kUnboundedEpsilon, {0});
  const std::string jsonl = ExportHistoryJsonl(system.history(), 3);
  // 1 update + 3 applies + 1 read + 1 query = 6 lines.
  EXPECT_EQ(CountLines(jsonl), 6);
  EXPECT_NE(jsonl.find("\"kind\":\"update\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"apply\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"read\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"query\""), std::string::npos);
  EXPECT_NE(jsonl.find("increment(obj=0, 5)"), std::string::npos);
}

TEST(TraceExportTest, AbortedUpdatesFlagged) {
  core::ReplicatedSystem system(Config(Method::kCompe));
  const EtId et = MustSubmit(system, 0, {Operation::Increment(0, 5)});
  system.RunUntilQuiescent();
  ASSERT_TRUE(system.Decide(et, false).ok());
  system.RunUntilQuiescent();
  const std::string jsonl = ExportHistoryJsonl(system.history(), 3);
  EXPECT_NE(jsonl.find("\"aborted\":true"), std::string::npos);
}

TEST(TraceExportTest, StringValuesEscaped) {
  HistoryRecorder h;
  ReadRecord r;
  r.query = 1;
  r.value = Value(std::string("say \"hi\"\n"));
  h.RecordRead(r);
  const std::string jsonl = ExportHistoryJsonl(h, 1);
  EXPECT_NE(jsonl.find("\\\"hi\\\""), std::string::npos);
  EXPECT_NE(jsonl.find("\\n"), std::string::npos);
  // Exactly one newline: the record terminator.
  EXPECT_EQ(CountLines(jsonl), 1);
}

/// Splits JSONL into lines, asserting each line is one object.
std::vector<std::string> ParseLines(const std::string& jsonl) {
  std::vector<std::string> lines;
  std::stringstream stream(jsonl);
  std::string line;
  while (std::getline(stream, line)) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
    lines.push_back(line);
  }
  return lines;
}

int CountKind(const std::vector<std::string>& lines, const std::string& kind) {
  int n = 0;
  for (const auto& line : lines) {
    n += line.find("\"kind\":\"" + kind + "\"") != std::string::npos;
  }
  return n;
}

TEST(TraceExportTest, RoundTripCountsMatchHistory) {
  // Multi-site ORDUP run with a mixed workload: every record in the export
  // must parse line-by-line and the per-kind counts must equal what the
  // HistoryRecorder holds.
  core::ReplicatedSystem system(Config(Method::kOrdup));
  for (int i = 0; i < 6; ++i) {
    MustSubmit(system, static_cast<SiteId>(i % 3),
               {Operation::Increment(i % 2, 1)});
    system.RunFor(3'000);
  }
  system.RunUntilQuiescent();
  RunQuery(system, 2, core::kUnboundedEpsilon, {0, 1});

  const auto lines = ParseLines(ExportHistoryJsonl(system.history(), 3));
  const auto& h = system.history();
  int64_t applies = 0;
  for (SiteId s = 0; s < 3; ++s) {
    applies += static_cast<int64_t>(h.site_applies(s).size());
  }
  EXPECT_EQ(CountKind(lines, "update"),
            static_cast<int>(h.updates().size()));
  EXPECT_EQ(CountKind(lines, "apply"), applies);
  EXPECT_EQ(CountKind(lines, "read"), static_cast<int>(h.reads().size()));
  EXPECT_EQ(CountKind(lines, "query"), static_cast<int>(h.queries().size()));
  EXPECT_EQ(lines.size(),
            h.updates().size() + static_cast<size_t>(applies) +
                h.reads().size() + h.queries().size());
}

TEST(TraceExportTest, SpanExportRoundTrip) {
  core::ReplicatedSystem system(Config(Method::kOrdup));
  MustSubmit(system, 1, {Operation::Increment(0, 2)});
  system.RunUntilQuiescent();

  const std::string jsonl = ExportSpansJsonl(system.tracer());
  const auto lines = ParseLines(jsonl);
  EXPECT_EQ(lines.size(), system.tracer().events().size());
  EXPECT_EQ(CountKind(lines, "span"), static_cast<int>(lines.size()));
  // One line per lifecycle phase of the single ET, in recording order.
  EXPECT_NE(lines.front().find("\"phase\":\"submit\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"phase\":\"stable\""), std::string::npos);

  const std::string path = ::testing::TempDir() + "/esr_span_test.jsonl";
  ASSERT_TRUE(WriteSpansJsonl(system.tracer(), path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), jsonl);
  std::remove(path.c_str());
}

TEST(TraceExportTest, WritesFile) {
  core::ReplicatedSystem system(Config(Method::kCommu));
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  system.RunUntilQuiescent();
  const std::string path = ::testing::TempDir() + "/esr_trace_test.jsonl";
  ASSERT_TRUE(WriteHistoryJsonl(system.history(), 3, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ExportHistoryJsonl(system.history(), 3));
  std::remove(path.c_str());
}

TEST(TraceExportTest, UnwritablePathFails) {
  HistoryRecorder h;
  EXPECT_FALSE(WriteHistoryJsonl(h, 1, "/nonexistent-dir/x.jsonl").ok());
}

}  // namespace
}  // namespace esr::analysis
