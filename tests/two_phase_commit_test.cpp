#include "cc/two_phase_commit.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "msg/stable_queue.h"
#include "sim/simulator.h"

namespace esr::cc {
namespace {

class TwoPhaseCommitTest : public ::testing::Test {
 protected:
  void Build(int num_sites, sim::NetworkConfig net_config = {}) {
    num_sites_ = num_sites;
    net_ = std::make_unique<sim::Network>(&sim_, num_sites, net_config, 5);
    for (SiteId s = 0; s < num_sites; ++s) {
      mailboxes_.push_back(std::make_unique<msg::Mailbox>(net_.get(), s));
      queues_.push_back(std::make_unique<msg::StableQueueManager>(
          &sim_, mailboxes_.back().get(), msg::StableQueueConfig{}));
      stores_.push_back(std::make_unique<store::ObjectStore>());
      engines_.push_back(std::make_unique<TwoPhaseCommitEngine>(
          mailboxes_.back().get(), queues_.back().get(), stores_.back().get(),
          num_sites));
    }
  }

  int num_sites_ = 0;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::vector<std::unique_ptr<msg::Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<msg::StableQueueManager>> queues_;
  std::vector<std::unique_ptr<store::ObjectStore>> stores_;
  std::vector<std::unique_ptr<TwoPhaseCommitEngine>> engines_;
};

TEST_F(TwoPhaseCommitTest, CommitAppliesAtEverySite) {
  Build(3);
  Status result = Status::Internal("never called");
  engines_[0]->ExecuteUpdate({store::Operation::Increment(0, 7)},
                             [&](Status s) { result = s; });
  sim_.Run();
  EXPECT_TRUE(result.ok());
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(stores_[s]->Read(0).AsInt(), 7) << "site " << s;
  }
}

TEST_F(TwoPhaseCommitTest, SequentialUpdatesAllApply) {
  Build(3);
  int committed = 0;
  std::function<void(int)> submit = [&](int remaining) {
    if (remaining == 0) return;
    engines_[remaining % 3]->ExecuteUpdate(
        {store::Operation::Increment(0, 1)}, [&, remaining](Status s) {
          if (s.ok()) ++committed;
          submit(remaining - 1);
        });
  };
  submit(10);
  sim_.Run();
  EXPECT_EQ(committed, 10);
  for (SiteId s = 0; s < 3; ++s) EXPECT_EQ(stores_[s]->Read(0).AsInt(), 10);
}

TEST_F(TwoPhaseCommitTest, ConcurrentConflictingUpdatesSerialize) {
  Build(3);
  int committed = 0, aborted = 0;
  for (int i = 0; i < 8; ++i) {
    engines_[i % 3]->ExecuteUpdate(
        {store::Operation::Increment(0, 1),
         store::Operation::Increment(1, 1)},
        [&](Status s) { s.ok() ? ++committed : ++aborted; });
  }
  sim_.Run();
  // All sites agree, and the final value equals the number of commits.
  const int64_t v0 = stores_[0]->Read(0).AsInt();
  for (SiteId s = 0; s < 3; ++s) {
    EXPECT_EQ(stores_[s]->Read(0).AsInt(), v0);
    EXPECT_EQ(stores_[s]->Read(1).AsInt(), v0);
  }
  EXPECT_EQ(v0, committed);
  EXPECT_EQ(committed + aborted, 8);
  EXPECT_GT(committed, 0);
}

TEST_F(TwoPhaseCommitTest, OpposingLockOrdersResolvedByDeadlockDetection) {
  Build(2);
  int done = 0;
  // Two transactions writing {0,1} in opposite op order from different
  // coordinators.
  engines_[0]->ExecuteUpdate({store::Operation::Increment(0, 1),
                              store::Operation::Increment(1, 1)},
                             [&](Status) { ++done; });
  engines_[1]->ExecuteUpdate({store::Operation::Increment(1, 1),
                              store::Operation::Increment(0, 1)},
                             [&](Status) { ++done; });
  sim_.Run();
  EXPECT_EQ(done, 2) << "no transaction may hang forever";
  EXPECT_EQ(stores_[0]->StateDigest(), stores_[1]->StateDigest());
}

TEST_F(TwoPhaseCommitTest, ReadBlocksBehindPreparedWriter) {
  // Slow the network so the prepare window is observable.
  sim::NetworkConfig net;
  net.base_latency_us = 10'000;
  net.jitter_us = 0;
  Build(3, net);
  Status commit_status = Status::Internal("pending");
  engines_[0]->ExecuteUpdate({store::Operation::Increment(0, 5)},
                             [&](Status s) { commit_status = s; });
  // Give the prepare time to land at site 1 but not the decision.
  sim_.RunUntil(12'000);
  bool read_done = false;
  int64_t read_value = -1;
  engines_[1]->ExecuteRead(0, [&](Result<Value> v) {
    read_done = true;
    ASSERT_TRUE(v.ok());
    read_value = v->AsInt();
  });
  EXPECT_FALSE(read_done) << "read must wait behind the prepared X lock";
  sim_.Run();
  EXPECT_TRUE(read_done);
  EXPECT_EQ(read_value, 5) << "read admitted only after commit applied";
}

TEST_F(TwoPhaseCommitTest, ReadWithoutContentionIsImmediate) {
  Build(2);
  bool done = false;
  engines_[0]->ExecuteRead(7, [&](Result<Value> v) {
    done = true;
    EXPECT_TRUE(v.ok());
    EXPECT_EQ(**&v, Value());
  });
  EXPECT_TRUE(done);
}

TEST_F(TwoPhaseCommitTest, PartitionStallsCommitUntilHeal) {
  Build(3);
  net_->SetPartition({{0, 1}, {2}});
  Status result = Status::Internal("pending");
  bool finished = false;
  engines_[0]->ExecuteUpdate({store::Operation::Increment(0, 1)},
                             [&](Status s) {
                               finished = true;
                               result = s;
                             });
  sim_.RunUntil(500'000);
  EXPECT_FALSE(finished) << "write-all cannot finish across a partition";
  net_->HealPartition();
  sim_.Run();
  EXPECT_TRUE(finished);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(stores_[2]->Read(0).AsInt(), 1);
}

TEST_F(TwoPhaseCommitTest, PrepareAfterDecideIsTombstoned) {
  // A coordinator whose local prepare dies synchronously decides abort
  // while its PREPAREs are still in flight; the late PREPARE must not
  // resurrect the transaction and strand its locks.
  Build(2);
  // txn A (engine 0) takes the lock at site 0 first.
  Status a_status = Status::Internal("pending");
  engines_[0]->ExecuteUpdate({store::Operation::Increment(0, 1)},
                             [&](Status s) { a_status = s; });
  // txn B from engine 0 too: its self-prepare dies against A's lock
  // (wait-die, B younger), deciding abort before B's PREPARE lands at
  // site 1.
  Status b_status = Status::Internal("pending");
  engines_[0]->ExecuteUpdate({store::Operation::Increment(0, 1)},
                             [&](Status s) { b_status = s; });
  sim_.Run();
  EXPECT_TRUE(a_status.ok());
  EXPECT_TRUE(b_status.IsAborted());
  EXPECT_GE(engines_[1]->counters().Get("tpc.prepare_after_decide") +
                engines_[0]->counters().Get("tpc.prepare_after_decide"),
            0);
  // The critical post-condition: no stranded locks — a fresh transaction
  // sails through.
  Status c_status = Status::Internal("pending");
  engines_[1]->ExecuteUpdate({store::Operation::Increment(0, 1)},
                             [&](Status s) { c_status = s; });
  sim_.Run();
  EXPECT_TRUE(c_status.ok());
  EXPECT_EQ(stores_[0]->Read(0).AsInt(), 2);
  EXPECT_EQ(stores_[1]->Read(0).AsInt(), 2);
}

TEST_F(TwoPhaseCommitTest, LossyNetworkStillCommits) {
  sim::NetworkConfig net;
  net.loss_probability = 0.3;
  Build(3, net);
  // Sequential (non-conflicting in time) updates: loss must only delay,
  // never abort, thanks to stable-queue retransmission.
  int committed = 0;
  std::function<void(int)> next = [&](int remaining) {
    if (remaining == 0) return;
    engines_[0]->ExecuteUpdate({store::Operation::Increment(2, 1)},
                               [&, remaining](Status s) {
                                 if (s.ok()) ++committed;
                                 next(remaining - 1);
                               });
  };
  next(5);
  sim_.Run();
  EXPECT_EQ(committed, 5);
  for (SiteId s = 0; s < 3; ++s) EXPECT_EQ(stores_[s]->Read(2).AsInt(), 5);
}

}  // namespace
}  // namespace esr::cc
