// Value-units divergence bounding (extension; paper section 5.1 notes that
// implementing the "data value" spatial consistency criterion requires the
// replica control methods "to explicitly include these factors" — this is
// that inclusion, for the counter-based methods).

#include <gtest/gtest.h>

#include "test_util.h"

namespace esr::core {
namespace {

using store::Operation;
using test::Config;
using test::MustSubmit;

TEST(ValueBoundTest, ReadWithinValueBudgetProceeds) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 7)});
  // One in-flight update of magnitude 7; a value budget of 10 covers it.
  const EtId q = system.BeginQuery(0, kUnboundedEpsilon,
                                   /*value_epsilon=*/10);
  Result<Value> v = system.TryRead(q, 0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 7);
  EXPECT_EQ(system.query_state(q)->value_inconsistency, 7);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(ValueBoundTest, ReadBeyondValueBudgetWaits) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 100)});
  const EtId q = system.BeginQuery(0, kUnboundedEpsilon,
                                   /*value_epsilon=*/50);
  Result<Value> direct = system.TryRead(q, 0);
  ASSERT_FALSE(direct.ok());
  EXPECT_TRUE(direct.status().IsUnavailable());
  // Once the big update is stable, the counter drains and the read passes
  // with zero value inconsistency.
  bool done = false;
  system.Read(q, 0, [&](Result<Value> v) {
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v->AsInt(), 100);
    done = true;
  });
  system.RunUntilQuiescent();
  EXPECT_TRUE(done);
  EXPECT_EQ(system.query_state(q)->value_inconsistency, 0);
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(ValueBoundTest, ValueAndCountBudgetsAreIndependent) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  // Two small in-flight updates: count 2, magnitude 2.
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  MustSubmit(system, 0, {Operation::Increment(0, 1)});
  // Tight count budget blocks even though the value budget is loose.
  const EtId q1 = system.BeginQuery(0, /*epsilon=*/1,
                                    /*value_epsilon=*/1'000);
  EXPECT_TRUE(system.TryRead(q1, 0).status().IsUnavailable());
  ASSERT_TRUE(system.EndQuery(q1).ok());
  // Loose count budget + tight value budget also blocks.
  const EtId q2 = system.BeginQuery(0, /*epsilon=*/10, /*value_epsilon=*/1);
  EXPECT_TRUE(system.TryRead(q2, 0).status().IsUnavailable());
  ASSERT_TRUE(system.EndQuery(q2).ok());
  // Both loose: proceeds, charged on both meters.
  const EtId q3 = system.BeginQuery(0, /*epsilon=*/10,
                                    /*value_epsilon=*/10);
  ASSERT_TRUE(system.TryRead(q3, 0).ok());
  EXPECT_EQ(system.query_state(q3)->inconsistency, 2);
  EXPECT_EQ(system.query_state(q3)->value_inconsistency, 2);
  ASSERT_TRUE(system.EndQuery(q3).ok());
}

TEST(ValueBoundTest, ActualValueErrorBoundedByBudget) {
  // The headline guarantee: with value budget V, a query's reading of a
  // counter differs from the locally-converged value by at most V plus
  // whatever is still unknown at this site. At quiescence "unknown" is
  // empty, so |read - final| <= charged <= V.
  auto config = Config(Method::kCommu, 3, 103);
  config.network.base_latency_us = 15'000;
  ReplicatedSystem system(config);
  Rng rng(103);
  int64_t posted = 0;
  for (int i = 0; i < 30; ++i) {
    const int64_t delta = rng.Uniform(1, 9);
    posted += delta;
    MustSubmit(system, static_cast<SiteId>(rng.Uniform(0, 2)),
               {Operation::Increment(0, delta)});
    system.RunFor(3'000);
    if (i % 5 == 4) {
      const EtId q = system.BeginQuery(0, kUnboundedEpsilon,
                                       /*value_epsilon=*/12);
      Result<Value> v = system.TryRead(q, 0);
      if (v.ok()) {
        const int64_t charged = system.query_state(q)->value_inconsistency;
        EXPECT_LE(charged, 12);
      }
      ASSERT_TRUE(system.EndQuery(q).ok());
    }
  }
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_EQ(system.SiteValue(1, 0).AsInt(), posted);
}

TEST(ValueBoundTest, RituSingleVersionInheritsValueBounding) {
  auto config = Config(Method::kRituSingle);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  // Timestamped writes weigh 0 (their value distance is state-dependent),
  // so value budgets do not block them — only the count budget does.
  MustSubmit(system, 0,
             {Operation::TimestampedWrite(0, Value(int64_t{5}),
                                          kZeroTimestamp)});
  const EtId q = system.BeginQuery(0, kUnboundedEpsilon, /*value_epsilon=*/0);
  Result<Value> v = system.TryRead(q, 0);
  EXPECT_TRUE(v.ok()) << "zero-weight updates don't consume value budget";
  ASSERT_TRUE(system.EndQuery(q).ok());
}

TEST(ValueBoundTest, DefaultValueBudgetIsUnbounded) {
  auto config = Config(Method::kCommu);
  config.network.base_latency_us = 20'000;
  ReplicatedSystem system(config);
  MustSubmit(system, 0, {Operation::Increment(0, 1'000'000)});
  const EtId q = system.BeginQuery(0);  // both budgets unbounded
  EXPECT_TRUE(system.TryRead(q, 0).ok());
  ASSERT_TRUE(system.EndQuery(q).ok());
}

}  // namespace
}  // namespace esr::core
