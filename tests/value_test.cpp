#include "common/value.h"

#include <gtest/gtest.h>

#include <sstream>

namespace esr {
namespace {

TEST(ValueTest, DefaultIsIntegerZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_FALSE(v.is_string());
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(ValueTest, IntConstruction) {
  Value v(int64_t{-42});
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), -42);
}

TEST(ValueTest, StringConstruction) {
  Value v(std::string("hello"));
  EXPECT_TRUE(v.is_string());
  EXPECT_FALSE(v.is_int());
  EXPECT_EQ(v.AsString(), "hello");
}

TEST(ValueTest, EqualityByTypeAndContent) {
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_FALSE(Value(int64_t{5}) == Value(int64_t{6}));
  EXPECT_EQ(Value(std::string("a")), Value(std::string("a")));
  EXPECT_FALSE(Value(std::string("a")) == Value(std::string("b")));
  // An int and a string are never equal, even "0" vs 0.
  EXPECT_FALSE(Value(int64_t{0}) == Value(std::string("0")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("x")).ToString(), "\"x\"");
}

TEST(ValueTest, StreamOperator) {
  std::ostringstream os;
  os << Value(int64_t{3}) << " " << Value(std::string("s"));
  EXPECT_EQ(os.str(), "3 \"s\"");
}

TEST(ValueTest, CopySemantics) {
  Value a(std::string("payload"));
  Value b = a;
  EXPECT_EQ(a, b);
  b = Value(int64_t{1});
  EXPECT_EQ(a.AsString(), "payload") << "copies are independent";
}

}  // namespace
}  // namespace esr
