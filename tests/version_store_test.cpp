#include "store/version_store.h"

#include <gtest/gtest.h>

namespace esr::store {
namespace {

TEST(VersionStoreTest, EmptyObjectHasNoVersions) {
  VersionStore store;
  EXPECT_FALSE(store.ReadLatest(0).has_value());
  EXPECT_FALSE(store.ReadAtOrBefore(0, {100, 0}).has_value());
  EXPECT_EQ(store.VersionCount(0), 0);
}

TEST(VersionStoreTest, AppendAndReadLatest) {
  VersionStore store;
  store.AppendVersion(1, {1, 0}, Value(int64_t{10}));
  store.AppendVersion(1, {3, 0}, Value(int64_t{30}));
  store.AppendVersion(1, {2, 0}, Value(int64_t{20}));  // out of order
  auto latest = store.ReadLatest(1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->value.AsInt(), 30);
  EXPECT_EQ(latest->timestamp, (LamportTimestamp{3, 0}));
  EXPECT_EQ(store.VersionCount(1), 3);
}

TEST(VersionStoreTest, ReadAtOrBeforeSelectsSnapshot) {
  VersionStore store;
  store.AppendVersion(0, {10, 0}, Value(int64_t{1}));
  store.AppendVersion(0, {20, 0}, Value(int64_t{2}));
  store.AppendVersion(0, {30, 0}, Value(int64_t{3}));

  auto at25 = store.ReadAtOrBefore(0, {25, 0});
  ASSERT_TRUE(at25.has_value());
  EXPECT_EQ(at25->value.AsInt(), 2);

  auto at20 = store.ReadAtOrBefore(0, {20, 0});
  ASSERT_TRUE(at20.has_value());
  EXPECT_EQ(at20->value.AsInt(), 2) << "at-or-before is inclusive";

  EXPECT_FALSE(store.ReadAtOrBefore(0, {9, 99}).has_value());
}

TEST(VersionStoreTest, IdempotentAppend) {
  VersionStore store;
  store.AppendVersion(0, {5, 0}, Value(int64_t{7}));
  store.AppendVersion(0, {5, 0}, Value(int64_t{7}));
  EXPECT_EQ(store.VersionCount(0), 1);
}

TEST(VersionStoreTest, SameTimestampReplacesValueForCompensation) {
  VersionStore store;
  store.AppendVersion(0, {5, 0}, Value(int64_t{7}));
  // COMPE's "add another version with the same timestamp but bearing the
  // previous value".
  store.AppendVersion(0, {5, 0}, Value(int64_t{0}));
  EXPECT_EQ(store.ReadLatest(0)->value.AsInt(), 0);
  EXPECT_EQ(store.VersionCount(0), 1);
}

TEST(VersionStoreTest, RemoveVersion) {
  VersionStore store;
  store.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  store.AppendVersion(0, {2, 0}, Value(int64_t{2}));
  ASSERT_TRUE(store.RemoveVersion(0, {2, 0}).ok());
  EXPECT_EQ(store.ReadLatest(0)->value.AsInt(), 1);
  EXPECT_TRUE(store.RemoveVersion(0, {2, 0}).IsNotFound());
  EXPECT_TRUE(store.RemoveVersion(9, {1, 0}).IsNotFound());
}

TEST(VersionStoreTest, DigestOrderIndependent) {
  VersionStore a, b;
  a.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  a.AppendVersion(1, {2, 0}, Value(int64_t{2}));
  b.AppendVersion(1, {2, 0}, Value(int64_t{2}));
  b.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(VersionStoreTest, DigestSensitiveToValues) {
  VersionStore a, b;
  a.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  b.AppendVersion(0, {1, 0}, Value(int64_t{2}));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(VersionStoreTest, MaxTimestampTracksNewest) {
  VersionStore store;
  EXPECT_EQ(store.MaxTimestamp(), kZeroTimestamp);
  store.AppendVersion(0, {7, 2}, Value(int64_t{1}));
  store.AppendVersion(1, {3, 0}, Value(int64_t{1}));
  EXPECT_EQ(store.MaxTimestamp(), (LamportTimestamp{7, 2}));
}

TEST(VersionStoreTest, SiteBreaksTimestampTies) {
  VersionStore store;
  store.AppendVersion(0, {5, 1}, Value(int64_t{11}));
  store.AppendVersion(0, {5, 2}, Value(int64_t{22}));
  EXPECT_EQ(store.ReadLatest(0)->value.AsInt(), 22);
  auto snap = store.ReadAtOrBefore(0, {5, 1});
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->value.AsInt(), 11);
}

}  // namespace
}  // namespace esr::store
