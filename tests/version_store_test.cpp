#include "store/version_store.h"

#include <gtest/gtest.h>

namespace esr::store {
namespace {

TEST(VersionStoreTest, EmptyObjectHasNoVersions) {
  VersionStore store;
  EXPECT_FALSE(store.ReadLatest(0).has_value());
  EXPECT_FALSE(store.ReadAtOrBefore(0, {100, 0}).has_value());
  EXPECT_EQ(store.VersionCount(0), 0);
}

TEST(VersionStoreTest, AppendAndReadLatest) {
  VersionStore store;
  store.AppendVersion(1, {1, 0}, Value(int64_t{10}));
  store.AppendVersion(1, {3, 0}, Value(int64_t{30}));
  store.AppendVersion(1, {2, 0}, Value(int64_t{20}));  // out of order
  auto latest = store.ReadLatest(1);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->value.AsInt(), 30);
  EXPECT_EQ(latest->timestamp, (LamportTimestamp{3, 0}));
  EXPECT_EQ(store.VersionCount(1), 3);
}

TEST(VersionStoreTest, ReadAtOrBeforeSelectsSnapshot) {
  VersionStore store;
  store.AppendVersion(0, {10, 0}, Value(int64_t{1}));
  store.AppendVersion(0, {20, 0}, Value(int64_t{2}));
  store.AppendVersion(0, {30, 0}, Value(int64_t{3}));

  auto at25 = store.ReadAtOrBefore(0, {25, 0});
  ASSERT_TRUE(at25.has_value());
  EXPECT_EQ(at25->value.AsInt(), 2);

  auto at20 = store.ReadAtOrBefore(0, {20, 0});
  ASSERT_TRUE(at20.has_value());
  EXPECT_EQ(at20->value.AsInt(), 2) << "at-or-before is inclusive";

  EXPECT_FALSE(store.ReadAtOrBefore(0, {9, 99}).has_value());
}

TEST(VersionStoreTest, IdempotentAppend) {
  VersionStore store;
  store.AppendVersion(0, {5, 0}, Value(int64_t{7}));
  store.AppendVersion(0, {5, 0}, Value(int64_t{7}));
  EXPECT_EQ(store.VersionCount(0), 1);
}

TEST(VersionStoreTest, SameTimestampReplacesValueForCompensation) {
  VersionStore store;
  store.AppendVersion(0, {5, 0}, Value(int64_t{7}));
  // COMPE's "add another version with the same timestamp but bearing the
  // previous value".
  store.AppendVersion(0, {5, 0}, Value(int64_t{0}));
  EXPECT_EQ(store.ReadLatest(0)->value.AsInt(), 0);
  EXPECT_EQ(store.VersionCount(0), 1);
}

TEST(VersionStoreTest, RemoveVersion) {
  VersionStore store;
  store.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  store.AppendVersion(0, {2, 0}, Value(int64_t{2}));
  ASSERT_TRUE(store.RemoveVersion(0, {2, 0}).ok());
  EXPECT_EQ(store.ReadLatest(0)->value.AsInt(), 1);
  EXPECT_TRUE(store.RemoveVersion(0, {2, 0}).IsNotFound());
  EXPECT_TRUE(store.RemoveVersion(9, {1, 0}).IsNotFound());
}

TEST(VersionStoreTest, MaxTimestampRecomputedWhenMaxVersionRemoved) {
  VersionStore store;
  store.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  store.AppendVersion(1, {5, 0}, Value(int64_t{5}));
  store.AppendVersion(0, {9, 0}, Value(int64_t{9}));
  ASSERT_EQ(store.MaxTimestamp(), (LamportTimestamp{9, 0}));
  // COMPE's remove-version compensation deletes the newest version; the
  // reported maximum must fall back to a timestamp some version carries.
  ASSERT_TRUE(store.RemoveVersion(0, {9, 0}).ok());
  EXPECT_EQ(store.MaxTimestamp(), (LamportTimestamp{5, 0}));
  ASSERT_TRUE(store.RemoveVersion(1, {5, 0}).ok());
  EXPECT_EQ(store.MaxTimestamp(), (LamportTimestamp{1, 0}));
  ASSERT_TRUE(store.RemoveVersion(0, {1, 0}).ok());
  EXPECT_EQ(store.MaxTimestamp(), kZeroTimestamp);
}

TEST(VersionStoreTest, MaxTimestampKeptWhenNonMaxVersionRemoved) {
  VersionStore store;
  store.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  store.AppendVersion(0, {9, 0}, Value(int64_t{9}));
  ASSERT_TRUE(store.RemoveVersion(0, {1, 0}).ok());
  EXPECT_EQ(store.MaxTimestamp(), (LamportTimestamp{9, 0}));
}

TEST(VersionStoreTest, RemovingLastVersionDropsObjectId) {
  VersionStore store;
  store.AppendVersion(7, {1, 0}, Value(int64_t{1}));
  ASSERT_TRUE(store.RemoveVersion(7, {1, 0}).ok());
  EXPECT_TRUE(store.ObjectIds().empty());
  EXPECT_EQ(store.VersionCount(7), 0);
}

TEST(VersionStoreTest, DigestOrderIndependent) {
  VersionStore a, b;
  a.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  a.AppendVersion(1, {2, 0}, Value(int64_t{2}));
  b.AppendVersion(1, {2, 0}, Value(int64_t{2}));
  b.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(VersionStoreTest, DigestSeparatesIdAndTimestampFields) {
  // (id=1, ts=23.0) and (id=12, ts=3.0) both render to the byte stream
  // "123.0" without field separators — distinct states must not collide.
  VersionStore a, b;
  a.AppendVersion(1, {23, 0}, Value(int64_t{0}));
  b.AppendVersion(12, {3, 0}, Value(int64_t{0}));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(VersionStoreTest, DigestSeparatesTimestampAndValueFields) {
  // (ts=2.1, value=11) and (ts=2.11, value=1) both render to the byte
  // stream "2.111" without a separator between the timestamp and value.
  VersionStore a, b;
  a.AppendVersion(0, {2, 1}, Value(int64_t{11}));
  b.AppendVersion(0, {2, 11}, Value(int64_t{1}));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(VersionStoreTest, DigestSensitiveToValues) {
  VersionStore a, b;
  a.AppendVersion(0, {1, 0}, Value(int64_t{1}));
  b.AppendVersion(0, {1, 0}, Value(int64_t{2}));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(VersionStoreTest, MaxTimestampTracksNewest) {
  VersionStore store;
  EXPECT_EQ(store.MaxTimestamp(), kZeroTimestamp);
  store.AppendVersion(0, {7, 2}, Value(int64_t{1}));
  store.AppendVersion(1, {3, 0}, Value(int64_t{1}));
  EXPECT_EQ(store.MaxTimestamp(), (LamportTimestamp{7, 2}));
}

TEST(VersionStoreTest, SiteBreaksTimestampTies) {
  VersionStore store;
  store.AppendVersion(0, {5, 1}, Value(int64_t{11}));
  store.AppendVersion(0, {5, 2}, Value(int64_t{22}));
  EXPECT_EQ(store.ReadLatest(0)->value.AsInt(), 22);
  auto snap = store.ReadAtOrBefore(0, {5, 1});
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->value.AsInt(), 11);
}

}  // namespace
}  // namespace esr::store
