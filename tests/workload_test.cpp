#include "workload/workload.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace esr::workload {
namespace {

using core::Method;
using test::Config;

TEST(WorkloadTest, DrivesMixedLoadAndCollectsMetrics) {
  core::ReplicatedSystem system(Config(Method::kCommu, 3, 71));
  WorkloadSpec spec;
  spec.seed = 71;
  spec.duration_us = 200'000;
  spec.clients_per_site = 2;
  spec.update_fraction = 0.4;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  EXPECT_GT(result.updates_committed, 0);
  EXPECT_GT(result.queries_completed, 0);
  EXPECT_EQ(result.reads_completed,
            result.queries_completed * spec.reads_per_query);
  EXPECT_GT(result.UpdatesPerSec(), 0);
  EXPECT_GT(result.QueriesPerSec(), 0);
  EXPECT_GT(result.update_latency_us.count(), 0);
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(WorkloadTest, DeterministicForSameSeed) {
  auto run = [](uint64_t seed) {
    core::ReplicatedSystem system(Config(Method::kCommu, 3, seed));
    WorkloadSpec spec;
    spec.seed = seed;
    spec.duration_us = 100'000;
    WorkloadRunner runner(&system, spec);
    auto result = runner.Run();
    return std::make_pair(result.updates_committed,
                          result.queries_completed);
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(WorkloadTest, RituWorkloadUsesTimestampedWrites) {
  core::ReplicatedSystem system(Config(Method::kRituMulti, 3, 73));
  WorkloadSpec spec;
  spec.seed = 73;
  spec.duration_us = 150'000;
  spec.update_kind = WorkloadSpec::UpdateKind::kTimestampedWrite;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  EXPECT_GT(result.updates_committed, 0);
  EXPECT_EQ(result.updates_rejected, 0) << "all updates admissible";
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(WorkloadTest, CompeWorkloadDecidesUpdates) {
  core::ReplicatedSystem system(Config(Method::kCompe, 3, 75));
  WorkloadSpec spec;
  spec.seed = 75;
  spec.duration_us = 150'000;
  spec.compe_abort_probability = 0.3;
  spec.compe_decision_delay_us = 5'000;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  EXPECT_GT(result.updates_committed, 0);
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
  EXPECT_GT(system.counters().Get("esr.compe_aborts"), 0);
  EXPECT_GT(system.counters().Get("esr.compe_commits"), 0);
}

TEST(WorkloadTest, SyncMethodsRunTheSameWorkload) {
  core::ReplicatedSystem system(Config(Method::kSync2pc, 3, 77));
  WorkloadSpec spec;
  spec.seed = 77;
  spec.duration_us = 150'000;
  spec.update_fraction = 0.3;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  EXPECT_GT(result.updates_committed, 0);
  EXPECT_GT(result.queries_completed, 0);
  system.RunUntilQuiescent();
  EXPECT_TRUE(system.Converged());
}

TEST(WorkloadTest, ZipfSkewConcentratesOnHotObjects) {
  core::ReplicatedSystem system(Config(Method::kCommu, 3, 79));
  WorkloadSpec spec;
  spec.seed = 79;
  spec.duration_us = 150'000;
  spec.zipf_theta = 0.95;
  spec.num_objects = 50;
  spec.update_fraction = 1.0;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  system.RunUntilQuiescent();
  ASSERT_GT(result.updates_committed, 0);
  // Hot object 0 should have absorbed far more increments than object 25.
  EXPECT_GT(system.SiteValue(0, 0).AsInt(),
            system.SiteValue(0, 25).AsInt());
}

TEST(WorkloadTest, EpsilonZeroWorkloadStaysBounded) {
  core::ReplicatedSystem system(Config(Method::kCommu, 3, 81));
  WorkloadSpec spec;
  spec.seed = 81;
  spec.duration_us = 150'000;
  spec.query_epsilon = 0;
  spec.update_fraction = 0.3;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  EXPECT_GT(result.queries_completed, 0);
  EXPECT_DOUBLE_EQ(result.query_inconsistency.max(), 0.0);
}

TEST(WorkloadTest, TransferWorkloadConservesSum) {
  core::ReplicatedSystem system(Config(Method::kCommu, 3, 83));
  WorkloadSpec spec;
  spec.seed = 83;
  spec.duration_us = 150'000;
  spec.update_kind = WorkloadSpec::UpdateKind::kTransfer;
  spec.update_fraction = 0.8;
  spec.num_objects = 6;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  system.RunUntilQuiescent();
  ASSERT_GT(result.updates_committed, 0);
  ASSERT_TRUE(system.Converged());
  int64_t sum = 0;
  for (esr::ObjectId o = 0; o < 6; ++o) {
    sum += system.SiteValue(0, o).AsInt();
  }
  EXPECT_EQ(sum, 0);
}

TEST(WorkloadTest, ReadGapSpreadsQueriesOverTime) {
  core::ReplicatedSystem system(Config(Method::kCommu, 3, 85));
  WorkloadSpec spec;
  spec.seed = 85;
  spec.duration_us = 150'000;
  spec.update_fraction = 0.0;  // queries only
  spec.reads_per_query = 4;
  spec.read_gap_us = 10'000;
  WorkloadRunner runner(&system, spec);
  auto result = runner.Run();
  ASSERT_GT(result.queries_completed, 0);
  // Each query spans at least 3 gaps.
  EXPECT_GE(result.query_latency_us.min(), 30'000);
}

TEST(WorkloadResultTest, ThroughputAndCompletionMath) {
  WorkloadResult r;
  r.issue_window_us = 1'000'000;
  r.updates_committed = 500;
  r.queries_started = 100;
  r.queries_completed = 80;
  EXPECT_DOUBLE_EQ(r.UpdatesPerSec(), 500.0);
  EXPECT_DOUBLE_EQ(r.QueryCompletionRate(), 0.8);
  EXPECT_FALSE(r.ToString().empty());
}

}  // namespace
}  // namespace esr::workload
